#!/usr/bin/env python3
"""The verification-daemon client CLI (README "Verification as a
service").

Run:  PYTHONPATH=src python scripts/rcd.py COMMAND ...

Commands:

* ``start``  — launch the daemon (detached by default; ``--foreground``
  to run in this process).  Binds an ephemeral port unless ``--port``
  is given and publishes its address in the state file
  (``<root>/.rc-serve.json``), which every other command reads.
* ``status`` — the daemon's live telemetry: uptime, queue depth and
  waits, warm-session batches/resets, per-namespace served counts.
* ``verify`` — verify case-study stems or ``.c`` paths through the
  daemon.  Incremental re-verification against the namespace's warm
  state is the *default* hot path; ``--full`` forces a cache-free run.
  ``--json`` writes the canonical per-function outcome map the CI
  serve-smoke job diffs against a batch run.
* ``watch``  — poll the watched files (mtime/sha) and feed each dirty
  set to the daemon as it appears: the edit-annotate-recheck loop.
* ``stop``   — graceful drain: queued requests finish, then the daemon
  exits and removes its state file.

Exit codes: 0 ok, 1 verification failure, 2 daemon/transport error.
"""

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import (DaemonClient, DaemonError,      # noqa: E402
                         FileWatcher, ServeConfig, VerifyDaemon,
                         default_state_path, read_state)

EXIT_FAIL = 1
EXIT_DAEMON = 2

START_TIMEOUT_S = 30.0
STOP_TIMEOUT_S = 30.0


def _state_path(args) -> Path:
    if getattr(args, "state", None):
        return Path(args.state)
    return default_state_path(getattr(args, "root", None) or ".")


def _client(args, timeout: float = 600.0) -> DaemonClient:
    state = read_state(_state_path(args))
    if state is None:
        print(f"rcd: no daemon state at {_state_path(args)} "
              "(is the daemon running? start one with 'rcd start')",
              file=sys.stderr)
        raise SystemExit(EXIT_DAEMON)
    return DaemonClient.from_state(state, timeout=timeout)


# ---------------------------------------------------------------------
# start / stop / status
# ---------------------------------------------------------------------

def do_start(args) -> int:
    state_path = _state_path(args)
    existing = read_state(state_path)
    if existing is not None and DaemonClient.from_state(
            existing, timeout=3.0).ping():
        print(f"rcd: daemon already running at "
              f"{existing.host}:{existing.port} (pid {existing.pid})")
        return 0
    config = ServeConfig(
        root=Path(args.root), host=args.host, port=args.port,
        jobs=args.jobs,
        ledger_path=Path(args.ledger) if args.ledger else None,
        state_file=state_path)
    if args.foreground:
        import asyncio
        daemon = VerifyDaemon(config)

        async def _run():
            host, port = await daemon.start()
            print(f"rcd: serving on {host}:{port} "
                  f"(root {config.root}, jobs {config.jobs})",
                  flush=True)
            await daemon.serve_forever()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
        return 0
    # Detach: re-exec ourselves in the foreground in a new session and
    # wait for the state file + a successful ping.
    cmd = [sys.executable, os.path.abspath(__file__), "start",
           "--foreground", "--root", str(args.root), "--host", args.host,
           "--port", str(args.port), "--jobs", str(args.jobs),
           "--state", str(state_path)]
    if args.ledger:
        cmd += ["--ledger", args.ledger]
    log = open(args.log, "ab") if args.log else subprocess.DEVNULL
    subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT,
                     stdin=subprocess.DEVNULL, start_new_session=True)
    deadline = time.monotonic() + START_TIMEOUT_S
    while time.monotonic() < deadline:
        state = read_state(state_path)
        if state is not None and DaemonClient.from_state(
                state, timeout=3.0).ping():
            print(f"rcd: daemon up at {state.host}:{state.port} "
                  f"(pid {state.pid}, state {state_path})")
            return 0
        time.sleep(0.2)
    print("rcd: daemon did not come up within "
          f"{START_TIMEOUT_S:.0f}s", file=sys.stderr)
    return EXIT_DAEMON


def do_stop(args) -> int:
    state_path = _state_path(args)
    state = read_state(state_path)
    if state is None:
        print(f"rcd: no daemon state at {state_path}; nothing to stop")
        return 0
    client = DaemonClient.from_state(state, timeout=STOP_TIMEOUT_S)
    try:
        reply = client.shutdown()
        print(f"rcd: draining ({reply.get('pending', 0)} queued "
              "request(s))")
    except DaemonError as exc:
        print(f"rcd: daemon unreachable ({exc}); removing stale state "
              "file")
        try:
            state_path.unlink()
        except OSError:
            pass
        return 0
    deadline = time.monotonic() + STOP_TIMEOUT_S
    while time.monotonic() < deadline:
        if not state_path.exists():
            print("rcd: daemon stopped")
            return 0
        time.sleep(0.2)
    print("rcd: daemon still shutting down (state file remains)",
          file=sys.stderr)
    return EXIT_DAEMON


def do_status(args) -> int:
    status = _client(args, timeout=10.0).status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    queue = status.get("queue", {})
    session = status.get("session")
    print(f"daemon pid {status.get('pid')} root {status.get('root')} "
          f"jobs {status.get('jobs')} uptime "
          f"{status.get('uptime_s', 0):.1f}s"
          f"{' DRAINING' if status.get('draining') else ''}")
    print(f"queue: depth {queue.get('depth', 0)}, served "
          f"{queue.get('served', 0)}, total wait "
          f"{queue.get('total_wait_s', 0.0):.3f}s (max "
          f"{queue.get('max_wait_s', 0.0):.3f}s)")
    if session:
        print(f"session: jobs {session['jobs']}, batches "
              f"{session['batches']}, tasks {session['tasks']}, resets "
              f"{session['resets']}")
    else:
        print("session: in-process (jobs=1, no warm pool)")
    for root, ns in status.get("namespaces", {}).items():
        print(f"namespace {root}: {ns['served']} unit run(s), "
              f"{ns['functions_checked']} function check(s)")
    if status.get("ledger"):
        print(f"ledger: {status['ledger']} "
              f"(rcstat --kind serve for trajectories)")
    return 0


# ---------------------------------------------------------------------
# verify / watch
# ---------------------------------------------------------------------

def _render_verify(events) -> tuple[dict, dict]:
    """Print the streamed events; return (files map, done summary).

    The files map is the canonical per-function outcome shape the CI
    serve-smoke job compares byte-for-byte against a batch run:
    ``{stem: {fn: {"ok", "error", "counters"}}}``."""
    files: dict = {}
    summary: dict = {}
    for ev in events:
        kind = ev.get("event")
        if kind == "function":
            files.setdefault(ev["unit"], {})[ev["name"]] = {
                "ok": ev["ok"],
                "error": ev.get("error", ""),
                "counters": ev.get("counters", {}),
            }
            if not ev["ok"]:
                print(f"  FAILED {ev['unit']}:{ev['name']}")
                if ev.get("stuck"):
                    print(ev["stuck"])
        elif kind == "unit":
            print(f"{ev['unit']}: {ev['functions']} function(s), "
                  f"{ev['clean']} clean / {ev['dirty']} dirty, "
                  f"{ev['rechecked']} re-checked "
                  f"{'ok' if ev['ok'] else 'FAILED'}")
        elif kind == "recovered":
            print(f"rcd: pool failure on {ev.get('unit')} "
                  f"({ev.get('message')}); retried serially")
        elif kind == "done":
            summary = ev
        elif kind == "error":
            raise DaemonError(ev.get("code", "error"),
                              ev.get("message", ""))
    return files, summary


def do_verify(args) -> int:
    client = _client(args)
    try:
        events = client.request("verify", _verify_params(args))
        files, summary = _render_verify(events)
    except DaemonError as exc:
        print(f"rcd: {exc}", file=sys.stderr)
        return EXIT_DAEMON
    if summary:
        print(f"total: {summary['functions']} function(s), "
              f"{summary['clean']} clean, {summary['rechecked']} "
              f"re-checked, {summary['failed']} failure(s) "
              f"[wall {summary['wall_s']:.3f}s, queue wait "
              f"{summary['queue_wait_s']:.3f}s"
              f"{', warm' if summary.get('warm') else ''}]")
    if args.json_path:
        payload = {"files": files, "summary": summary}
        Path(args.json_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json_path}")
    return 0 if summary.get("ok") else EXIT_FAIL


def _verify_params(args, paths=None) -> dict:
    params: dict = {}
    stems = paths if paths is not None else args.paths
    if stems:
        params["paths"] = [str(s) for s in stems]
    if args.root:
        params["root"] = str(Path(args.root).resolve())
    if args.jobs:
        params["jobs"] = args.jobs
    if getattr(args, "full", False):
        params["full"] = True
    return params


def do_watch(args) -> int:
    client = _client(args)
    root = Path(args.root or read_state(_state_path(args)).root)
    if args.paths:
        targets = []
        for s in args.paths:
            p = Path(s)
            if p.suffix != ".c":
                p = p.with_suffix(".c")
            if not p.is_absolute() and not (root / p).exists():
                p = root / "examples" / "casestudies" / p.name
            else:
                p = root / p if not p.is_absolute() else p
            targets.append(p)
    else:
        base = root / "examples" / "casestudies"
        base = base if base.is_dir() else root
        targets = sorted(base.glob("*.c"))
    if not targets:
        print("rcd: nothing to watch", file=sys.stderr)
        return EXIT_DAEMON
    print(f"rcd: watching {len(targets)} file(s) every "
          f"{args.interval:.2f}s (ctrl-c to stop)")
    watcher = FileWatcher(targets)
    ok = True
    if args.initial:
        ok = _watch_verify(client, args, [p.stem for p in targets])
    try:
        while True:
            time.sleep(args.interval)
            result = watcher.poll()
            for p in result.deleted:
                print(f"rcd: {p} deleted; dropped from dirty set")
            if result.changed:
                stems = [p.stem for p in result.changed]
                print(f"rcd: changed: {', '.join(stems)}")
                ok = _watch_verify(client, args, stems)
            if args.once:
                break
    except KeyboardInterrupt:
        print("rcd: watch stopped")
    return 0 if ok else EXIT_FAIL


def _watch_verify(client, args, stems) -> bool:
    try:
        events = client.request("verify", _verify_params(args, stems))
        _files, summary = _render_verify(events)
        return bool(summary.get("ok"))
    except DaemonError as exc:
        print(f"rcd: {exc}", file=sys.stderr)
        return False


# ---------------------------------------------------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    def common(p, root_default=None):
        p.add_argument("--root", default=root_default,
                       help="serve/namespace root (default: cwd or the "
                            "daemon's root)")
        p.add_argument("--state", default="",
                       help="daemon state file (default: "
                            "<root>/.rc-serve.json)")

    p = sub.add_parser("start", help="launch the daemon")
    common(p, root_default=".")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 = ephemeral (published in the state file)")
    p.add_argument("--jobs", type=int, default=1,
                   help="warm worker-pool width (1 = in-process)")
    p.add_argument("--ledger", default="",
                   help="serve ledger path (default: $RC_LEDGER)")
    p.add_argument("--log", default="", help="daemon log file (detached)")
    p.add_argument("--foreground", action="store_true")
    p.set_defaults(func=do_start)

    p = sub.add_parser("status", help="daemon telemetry")
    common(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=do_status)

    p = sub.add_parser("verify", help="verify through the daemon")
    p.add_argument("paths", nargs="*",
                   help="case-study stems or .c paths (default: all)")
    common(p)
    p.add_argument("--jobs", type=int, default=0,
                   help="override the daemon's job count for this run")
    p.add_argument("--full", action="store_true",
                   help="cache-free full verification")
    p.add_argument("--json", dest="json_path", default="",
                   help="write canonical outcomes JSON to PATH")
    p.set_defaults(func=do_verify)

    p = sub.add_parser("watch", help="poll files, re-verify dirty sets")
    p.add_argument("paths", nargs="*")
    common(p)
    p.add_argument("--interval", type=float, default=0.5)
    p.add_argument("--jobs", type=int, default=0)
    p.add_argument("--initial", action="store_true",
                   help="verify everything once before watching")
    p.add_argument("--once", action="store_true",
                   help="poll a single time, then exit")
    p.set_defaults(func=do_watch, full=False)

    p = sub.add_parser("stop", help="drain and stop the daemon")
    common(p)
    p.set_defaults(func=do_stop)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
