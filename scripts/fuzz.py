#!/usr/bin/env python3
"""Run soundness-fuzzing campaigns against the RefinedC reproduction.

Examples:

    # a seeded 60-second campaign on two driver workers
    PYTHONPATH=src python scripts/fuzz.py --budget 60 --seed 0 --jobs 2

    # exactly 200 programs, stats to JSON, prove the run replays
    PYTHONPATH=src python scripts/fuzz.py --count 200 --stats fuzz.json \\
        --verify-replay

    # replay the regression corpus
    PYTHONPATH=src python scripts/fuzz.py --replay

Exit status: 0 — clean campaign / replay; 1 — findings (soundness or
robustness bugs) or corpus replay failures; 2 — a budget campaign did
not replay byte-identically from its seed.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.fuzz import (DEFAULT_TEMPLATES, CampaignConfig,  # noqa: E402
                        load_corpus, replay_entry, run_campaign)
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR  # noqa: E402


def parse_args(argv):
    ap = argparse.ArgumentParser(
        description="soundness fuzzing: checker vs. Caesium interpreter")
    budget = ap.add_mutually_exclusive_group()
    budget.add_argument("--budget", type=float, metavar="SECONDS",
                        help="time-budgeted campaign")
    budget.add_argument("--count", type=int, metavar="N",
                        help="fixed-count campaign (default: 32)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--jobs", type=int, default=1,
                    help="driver process-pool width")
    ap.add_argument("--trials", type=int, default=6,
                    help="execution trials per accepted program")
    ap.add_argument("--mutants", type=int, default=None, metavar="N",
                    help="mutants per program (default: all)")
    ap.add_argument("--templates", type=str, default=None,
                    help="comma-separated template subset")
    ap.add_argument("--fuel", type=int, default=1_000_000)
    ap.add_argument("--no-shrink", action="store_true",
                    help="do not minimise findings")
    ap.add_argument("--stats", type=Path, default=None, metavar="PATH",
                    help="write campaign stats JSON here")
    ap.add_argument("--write-corpus", action="store_true",
                    help="persist findings to the regression corpus")
    ap.add_argument("--corpus", type=Path, default=None, metavar="DIR",
                    help=f"corpus directory (default: {DEFAULT_CORPUS_DIR})")
    ap.add_argument("--verify-replay", action="store_true",
                    help="re-run the campaign from its seed and require "
                         "byte-identical deterministic stats")
    ap.add_argument("--replay", action="store_true",
                    help="replay the corpus instead of fuzzing")
    ap.add_argument("--list-templates", action="store_true")
    return ap.parse_args(argv)


def do_replay(args) -> int:
    entries = load_corpus(args.corpus)
    if not entries:
        print("corpus is empty — nothing to replay")
        return 0
    failures = 0
    for path, entry in entries:
        res = replay_entry(entry)
        status = "ok" if res.ok else "FAIL"
        print(f"{status:4} {path.name}: " +
              ("; ".join(res.checks) if res.ok else res.detail))
        failures += not res.ok
    print(f"{len(entries) - failures}/{len(entries)} corpus entries replayed")
    return 1 if failures else 0


def do_campaign(args) -> int:
    templates = args.templates.split(",") if args.templates else None
    cfg = CampaignConfig(
        seed=args.seed, budget_s=args.budget,
        count=args.count if args.budget is None else None,
        jobs=args.jobs, trials=args.trials, mutant_limit=args.mutants,
        shrink=not args.no_shrink, write_corpus=args.write_corpus,
        corpus_dir=args.corpus, templates=templates, fuel=args.fuel)
    stats = run_campaign(cfg)
    print(stats.summary())
    for tname, counts in sorted(stats.per_template.items()):
        print(f"  {tname:14} " + " ".join(
            f"{k}={v}" for k, v in sorted(counts.items())))
    for f in stats.findings:
        print(f"FINDING [{f.kind}] {f.template} params={f.params} "
              f"mutant={f.mutant} ub={f.ub_class}"
              + (f" shrunk_to={f.shrunk_params}" if f.shrunk_params else "")
              + (f" corpus={f.corpus_path}" if f.corpus_path else ""))
        print(f"  {f.detail[:400]}")

    if args.stats:
        args.stats.parent.mkdir(parents=True, exist_ok=True)
        args.stats.write_text(stats.to_json() + "\n")
        print(f"stats written to {args.stats}")

    rc = 0 if stats.ok else 1
    if args.verify_replay:
        replay_cfg = CampaignConfig(
            seed=args.seed, count=stats.programs, jobs=args.jobs,
            trials=args.trials, mutant_limit=args.mutants,
            shrink=not args.no_shrink, templates=templates, fuel=args.fuel)
        replay = run_campaign(replay_cfg)
        if replay.to_json(deterministic=True) == \
                stats.to_json(deterministic=True):
            print(f"verify-replay: byte-identical over {stats.programs} "
                  "programs")
        else:
            print("verify-replay: MISMATCH — campaign is not a pure "
                  "function of its seed")
            rc = max(rc, 2)
    return rc


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.list_templates:
        print("\n".join(DEFAULT_TEMPLATES))
        return 0
    if args.replay:
        return do_replay(args)
    return do_campaign(args)


if __name__ == "__main__":
    sys.exit(main())
