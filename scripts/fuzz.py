#!/usr/bin/env python3
"""Run soundness-fuzzing campaigns against the RefinedC reproduction.

Examples:

    # a seeded 60-second campaign on two driver workers
    PYTHONPATH=src python scripts/fuzz.py --budget 60 --seed 0 --jobs 2

    # exactly 200 programs, stats to JSON, prove the run replays
    PYTHONPATH=src python scripts/fuzz.py --count 200 --stats fuzz.json \\
        --verify-replay

    # distributed sharding: run shard 1 of 4, then merge
    PYTHONPATH=src python scripts/fuzz.py --count 200 --shards 4 --shard 1 \\
        --stats shard1.json
    PYTHONPATH=src python scripts/fuzz.py --merge shard*.json --stats all.json

    # coverage dashboard for a finished campaign
    PYTHONPATH=src python scripts/fuzz.py --dashboard --stats-in all.json

    # enforce the pinned coverage floor
    PYTHONPATH=src python scripts/fuzz.py --count 24 --round-size 8 \\
        --check-floor tests/fuzz/coverage_baseline.json

    # replay the regression corpus
    PYTHONPATH=src python scripts/fuzz.py --replay

Exit status: 0 — clean campaign / replay; 1 — findings (soundness or
robustness bugs), corpus replay failures, or an unmet coverage floor;
2 — a budget campaign did not replay byte-identically from its seed, or
the steered campaign did not beat the blind one under
``--coverage-compare``.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.fuzz import (DEFAULT_TEMPLATES, CampaignConfig,  # noqa: E402
                        CampaignStats, load_corpus, merge_shard_stats,
                        replay_entry, run_campaign, run_shard_campaign)
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR  # noqa: E402
from repro.obs import RuleCostMap, record_run  # noqa: E402
from repro.trace.signature import RULE_PREFIX  # noqa: E402


def ledger_record(stats: CampaignStats) -> None:
    """One run-ledger record per finished campaign/merge (no-op unless
    RC_LEDGER is set).  The campaign retains coverage signatures, not
    traces, so the rules block is count-only — hit counts per rule
    dispatch key and solver outcome, no wall columns (``rcstat
    --top-rules`` then orders by count)."""
    costs = RuleCostMap()
    costs.add_counts(stats.coverage.counts)
    record_run("fuzz", wall_s=stats.wall_s, jobs=stats.jobs,
               suite=stats.templates, costs=costs,
               extra={"seed": stats.seed, "programs": stats.programs,
                      "coverage_keys": len(stats.coverage),
                      "rule_keys": len(stats.coverage.rule_keys()),
                      "kill_rate": round(stats.kill_rate, 6),
                      "findings": len(stats.findings), "ok": stats.ok})


def parse_args(argv):
    ap = argparse.ArgumentParser(
        description="soundness fuzzing: checker vs. Caesium interpreter")
    budget = ap.add_mutually_exclusive_group()
    budget.add_argument("--budget", type=float, metavar="SECONDS",
                        help="time-budgeted campaign")
    budget.add_argument("--count", type=int, metavar="N",
                        help="fixed-count campaign (default: 32)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--jobs", type=int, default=1,
                    help="driver process-pool width")
    ap.add_argument("--shards", type=int, default=1, metavar="N",
                    help="partition each round's seed space into N shards")
    ap.add_argument("--shard", type=int, default=None, metavar="K",
                    help="distributed mode: run only shard K of --shards "
                         "and emit mergeable per-shard stats")
    ap.add_argument("--merge", type=Path, nargs="+", default=None,
                    metavar="JSON", help="merge per-shard stats files into "
                    "one campaign (shrink + corpus filing run here)")
    ap.add_argument("--round-size", type=int, default=16, metavar="N",
                    help="programs per steering round")
    ap.add_argument("--no-coverage", action="store_true",
                    help="skip tracing/coverage signatures")
    ap.add_argument("--no-steer", action="store_true",
                    help="blind template sampling (no coverage steering)")
    ap.add_argument("--trials", type=int, default=6,
                    help="execution trials per accepted program")
    ap.add_argument("--mutants", type=int, default=None, metavar="N",
                    help="mutants per program (default: all)")
    ap.add_argument("--templates", type=str, default=None,
                    help="comma-separated template subset")
    ap.add_argument("--fuel", type=int, default=1_000_000)
    ap.add_argument("--no-shrink", action="store_true",
                    help="do not minimise findings")
    ap.add_argument("--stats", type=Path, default=None, metavar="PATH",
                    help="write campaign stats JSON here")
    ap.add_argument("--stats-in", type=Path, default=None, metavar="PATH",
                    help="read stats JSON instead of running a campaign "
                         "(for --dashboard / --check-floor)")
    ap.add_argument("--dashboard", action="store_true",
                    help="render the per-rule coverage / kill-rate "
                         "dashboard")
    ap.add_argument("--dashboard-json", type=Path, default=None,
                    metavar="PATH", help="write the dashboard as JSON")
    ap.add_argument("--check-floor", type=Path, default=None,
                    metavar="BASELINE",
                    help="fail if the campaign leaves any baseline "
                         "coverage key unexercised")
    ap.add_argument("--coverage-compare", type=Path, default=None,
                    metavar="PATH", help="run blind and steered campaigns "
                    "at the same budget and write the comparison JSON")
    ap.add_argument("--write-corpus", action="store_true",
                    help="persist findings to the regression corpus")
    ap.add_argument("--corpus", type=Path, default=None, metavar="DIR",
                    help=f"corpus directory (default: {DEFAULT_CORPUS_DIR})")
    ap.add_argument("--verify-replay", action="store_true",
                    help="re-run the campaign from its seed and require "
                         "byte-identical deterministic stats")
    ap.add_argument("--replay", action="store_true",
                    help="replay the corpus instead of fuzzing")
    ap.add_argument("--list-templates", action="store_true")
    return ap.parse_args(argv)


def build_config(args) -> CampaignConfig:
    templates = args.templates.split(",") if args.templates else None
    return CampaignConfig(
        seed=args.seed, budget_s=args.budget,
        count=args.count if args.budget is None else None,
        jobs=args.jobs, shards=args.shards, round_size=args.round_size,
        coverage=not args.no_coverage, steer=not args.no_steer,
        trials=args.trials, mutant_limit=args.mutants,
        shrink=not args.no_shrink, write_corpus=args.write_corpus,
        corpus_dir=args.corpus, templates=templates, fuel=args.fuel)


# ---------------------------------------------------------------------
# Dashboard.
# ---------------------------------------------------------------------

def dashboard_data(stats: CampaignStats) -> dict:
    """The machine-readable dashboard: per-rule coverage, per-template
    kill rates, UB/exec outcome tallies, category summary."""
    cov = stats.coverage
    rules = [{"key": k, "count": cov.counts[k],
              "first_seen": cov.first_seen[k]} for k in cov.rule_keys()]
    per_template = []
    for name in sorted(stats.per_template):
        t = stats.per_template[name]
        mutants = t.get("mutants", 0)
        killed = t.get("killed", 0)
        per_template.append({
            "template": name,
            "programs": t.get("programs", 0),
            "accepted": t.get("accepted", 0),
            "rejected": t.get("rejected", 0),
            "crashes": t.get("crashes", 0),
            "mutants": mutants,
            "killed": killed,
            "kill_rate": round(killed / mutants, 6) if mutants else None,
            "new_keys": t.get("new_keys", 0),
        })
    outcomes = {k: cov.counts[k] for k in sorted(cov.counts)
                if k.startswith(("exec:", "ub:"))}
    return {
        "fuzz_schema_version": stats.to_dict()["fuzz_schema_version"],
        "seed": stats.seed,
        "programs": stats.programs,
        "steered": stats.steered,
        "coverage_keys": len(cov),
        "rule_keys": len(rules),
        "categories": cov.category_counts(),
        "rules": rules,
        "per_template": per_template,
        "outcomes": outcomes,
        "kill_rate": round(stats.kill_rate, 6),
        "findings": len(stats.findings),
        "ok": stats.ok,
    }


def render_dashboard(stats: CampaignStats) -> str:
    d = dashboard_data(stats)
    lines = [
        f"== fuzz dashboard: seed={d['seed']} programs={d['programs']} "
        f"steered={d['steered']} ==",
        "",
        f"coverage: {d['coverage_keys']} keys "
        f"({d['rule_keys']} rules) — " +
        " ".join(f"{k}={v}" for k, v in d["categories"].items()),
        "",
        "per-rule coverage (hits, first-seen program):",
    ]
    for r in d["rules"]:
        lines.append(f"  {r['count']:6d}  @{r['first_seen']:<5d} "
                     f"{r['key'][len(RULE_PREFIX):]}")
    if not d["rules"]:
        lines.append("  (no coverage recorded — ran with --no-coverage?)")
    lines += ["", "per-template mutation kill rates:"]
    for t in d["per_template"]:
        rate = f"{t['kill_rate']:.1%}" if t["kill_rate"] is not None \
            else "  n/a"
        lines.append(
            f"  {t['template']:14} programs={t['programs']:<4d} "
            f"accepted={t['accepted']:<4d} mutants={t['mutants']:<4d} "
            f"killed={t['killed']:<4d} kill={rate:>6} "
            f"new_keys={t['new_keys']}")
    if d["outcomes"]:
        lines += ["", "oracle outcomes: " +
                  " ".join(f"{k}={v}" for k, v in d["outcomes"].items())]
    lines += ["", f"overall kill rate {d['kill_rate']:.1%}, "
              f"{d['findings']} findings, ok={d['ok']}"]
    return "\n".join(lines)


def check_floor(stats: CampaignStats, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    missing = stats.coverage.missing(baseline["keys"])
    pinned = len(baseline["keys"])
    if not missing:
        print(f"coverage floor: all {pinned} baseline keys exercised "
              f"(campaign total {len(stats.coverage)})")
        return 0
    print(f"coverage floor REGRESSION: {len(missing)}/{pinned} baseline "
          "keys no longer exercised:")
    for key in missing:
        print(f"  - {key}")
    print("(regenerate the baseline only if these rules were "
          "intentionally removed)")
    return 1


# ---------------------------------------------------------------------
# Modes.
# ---------------------------------------------------------------------

def do_replay(args) -> int:
    entries = load_corpus(args.corpus)
    if not entries:
        print("corpus is empty — nothing to replay")
        return 0
    failures = 0
    for path, entry in entries:
        res = replay_entry(entry)
        status = "ok" if res.ok else "FAIL"
        print(f"{status:4} {path.name}: " +
              ("; ".join(res.checks) if res.ok else res.detail))
        failures += not res.ok
    print(f"{len(entries) - failures}/{len(entries)} corpus entries replayed")
    return 1 if failures else 0


def write_stats(args, stats: CampaignStats) -> None:
    if args.stats:
        args.stats.parent.mkdir(parents=True, exist_ok=True)
        args.stats.write_text(stats.to_json() + "\n")
        print(f"stats written to {args.stats}")


def emit_dashboard(args, stats: CampaignStats) -> None:
    if args.dashboard:
        print(render_dashboard(stats))
    if args.dashboard_json:
        args.dashboard_json.parent.mkdir(parents=True, exist_ok=True)
        args.dashboard_json.write_text(
            json.dumps(dashboard_data(stats), indent=2) + "\n")
        print(f"dashboard JSON written to {args.dashboard_json}")


def do_shard(args) -> int:
    cfg = build_config(args)
    stats = run_shard_campaign(cfg, args.shard)
    print(f"shard {args.shard}/{cfg.shards}: {stats.summary()}")
    write_stats(args, stats)
    return 0 if stats.ok else 1


def do_merge(args) -> int:
    shards = [CampaignStats.from_dict(json.loads(p.read_text()))
              for p in args.merge]
    cfg = build_config(args)
    # The merge's shrink predicates must reproduce the shard runs'
    # conditions, so every shrink-relevant knob (seed, trials, fuel,
    # mutant budget) comes from the shard stats, never the merge's own
    # command line.
    cfg = CampaignConfig(**{**cfg.__dict__, "seed": shards[0].seed,
                            "trials": shards[0].trials,
                            "shards": shards[0].shards,
                            "round_size": shards[0].round_size,
                            "mutant_limit": shards[0].mutant_limit,
                            "fuel": shards[0].fuel})
    merged = merge_shard_stats(shards, cfg)
    print(f"merged {len(shards)} shards: {merged.summary()}")
    write_stats(args, merged)
    emit_dashboard(args, merged)
    ledger_record(merged)
    rc = 0 if merged.ok else 1
    if args.check_floor:
        rc = max(rc, check_floor(merged, args.check_floor))
    return rc


def do_inspect(args) -> int:
    stats = CampaignStats.from_dict(json.loads(args.stats_in.read_text()))
    emit_dashboard(args, stats)
    rc = 0
    if args.check_floor:
        rc = check_floor(stats, args.check_floor)
    return rc


def do_coverage_compare(args) -> int:
    base = build_config(args)
    if base.count is None:
        print("--coverage-compare needs --count (a shared program budget)")
        return 2
    blind_cfg = CampaignConfig(**{**base.__dict__, "steer": False,
                                  "coverage": True})
    steered_cfg = CampaignConfig(**{**base.__dict__, "steer": True,
                                    "coverage": True})
    blind = run_campaign(blind_cfg)
    steered = run_campaign(steered_cfg)
    b_rules = set(blind.coverage.rule_keys())
    s_rules = set(steered.coverage.rule_keys())
    cmp = {
        "seed": base.seed, "count": base.count,
        "round_size": base.round_size, "shards": base.shards,
        "blind": {"rule_keys": len(b_rules),
                  "coverage_keys": len(blind.coverage),
                  "stats": blind.to_dict(deterministic=True)},
        "steered": {"rule_keys": len(s_rules),
                    "coverage_keys": len(steered.coverage),
                    "stats": steered.to_dict(deterministic=True)},
        "steered_only_rules": sorted(s_rules - b_rules),
        "blind_only_rules": sorted(b_rules - s_rules),
        "steered_beats_blind": len(s_rules) > len(b_rules),
    }
    args.coverage_compare.parent.mkdir(parents=True, exist_ok=True)
    args.coverage_compare.write_text(json.dumps(cmp, indent=2) + "\n")
    print(f"blind:   {len(b_rules)} rule keys / "
          f"{len(blind.coverage)} total")
    print(f"steered: {len(s_rules)} rule keys / "
          f"{len(steered.coverage)} total")
    print(f"comparison written to {args.coverage_compare}")
    if not cmp["steered_beats_blind"]:
        print("steering did NOT beat blind sampling at this budget")
        return 2
    return 0


def do_campaign(args) -> int:
    cfg = build_config(args)
    stats = run_campaign(cfg)
    print(stats.summary())
    for tname, counts in sorted(stats.per_template.items()):
        print(f"  {tname:14} " + " ".join(
            f"{k}={v}" for k, v in sorted(counts.items())))
    for f in stats.findings:
        print(f"FINDING [{f.kind}] {f.template} params={f.params} "
              f"mutant={f.mutant} ub={f.ub_class}"
              + (f" shrunk_to={f.shrunk_params}" if f.shrunk_params else "")
              + (f" corpus={f.corpus_path}" if f.corpus_path else ""))
        print(f"  {f.detail[:400]}")

    write_stats(args, stats)
    emit_dashboard(args, stats)
    ledger_record(stats)

    rc = 0 if stats.ok else 1
    if args.check_floor:
        rc = max(rc, check_floor(stats, args.check_floor))
    if args.verify_replay:
        replay_cfg = CampaignConfig(
            **{**cfg.__dict__, "budget_s": None, "count": stats.programs,
               "write_corpus": False})
        replay = run_campaign(replay_cfg)
        if replay.to_json(deterministic=True) == \
                stats.to_json(deterministic=True):
            print(f"verify-replay: byte-identical over {stats.programs} "
                  "programs")
        else:
            print("verify-replay: MISMATCH — campaign is not a pure "
                  "function of its seed")
            rc = max(rc, 2)
    return rc


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.list_templates:
        print("\n".join(DEFAULT_TEMPLATES))
        return 0
    if args.replay:
        return do_replay(args)
    if args.merge:
        return do_merge(args)
    if args.stats_in:
        return do_inspect(args)
    if args.coverage_compare:
        return do_coverage_compare(args)
    if args.shard is not None:
        return do_shard(args)
    return do_campaign(args)


if __name__ == "__main__":
    sys.exit(main())
