"""Development driver: hand-built Figure 1 alloc, checked without the C
front end.  Kept as a debugging aid; the real pipeline goes through
repro.lang."""

from repro.caesium.layout import SIZE_T, IntLayout, PtrLayout, StructLayout
from repro.caesium.syntax import (Assign, BinOpE, Block, CondGoto, FieldOffset,
                                  Function, Goto, NullE, Program, Ret, Use,
                                  VarAddr)
from repro.refinedc import (RawFunctionAnnotations, RawStructAnnotations,
                            SpecContext, TypedProgram, build_function_spec,
                            check_function, define_struct_type)

SZ = IntLayout(SIZE_T)
PTR = PtrLayout()

mem_t_layout = StructLayout("mem_t", (("len", SZ), ("buffer", PTR)))

ctx = SpecContext()
ctx.structs["mem_t"] = mem_t_layout
define_struct_type(mem_t_layout, RawStructAnnotations(
    refined_by=["a: nat"],
    fields={"len": "a @ int<size_t>", "buffer": "&own<uninit<a>>"},
), ctx)

spec = build_function_spec("alloc", RawFunctionAnnotations(
    parameters=["a: nat", "n: nat", "p: loc"],
    args=["p @ &own<a @ mem_t>", "n @ int<size_t>"],
    returns="{n <= a} @ optional<&own<uninit<n>>, null>",
    ensures=["own p : {n <= a ? a - n : a} @ mem_t"],
), ctx)


def d():
    return Use(VarAddr("d"), PTR)


def sz():
    return Use(VarAddr("sz"), SZ)


def fld(name, layout):
    return Use(FieldOffset(d(), mem_t_layout, name), layout)


alloc_fn = Function(
    "alloc",
    params=[("d", PTR), ("sz", SZ)],
    ret_layout=PTR,
    locals=[],
    blocks={
        "entry": Block([], CondGoto(BinOpE(">", sz(), fld("len", SZ)),
                                    "ret_null", "body", line=11)),
        "ret_null": Block([], Ret(NullE(), line=11)),
        "body": Block(
            [Assign(FieldOffset(d(), mem_t_layout, "len"),
                    BinOpE("-", fld("len", SZ), sz()), SZ, line=12)],
            Ret(BinOpE("ptr_offset", fld("buffer", PTR), fld("len", SZ)),
                line=13)),
    },
    entry="entry",
)

program = Program(structs={"mem_t": mem_t_layout},
                  functions={"alloc": alloc_fn})
tp = TypedProgram(program=program, ctx=ctx, specs={"alloc": spec})

if __name__ == "__main__":
    result = check_function(tp, "alloc")
    print("OK" if result.ok else "FAILED")
    if not result.ok:
        print(result.format_error())
    print("rule applications:", result.stats.rule_applications)
    print("distinct rules:", len(result.stats.rules_used))
    print("evars instantiated:", result.stats.evars_instantiated)
    print("side conditions auto/manual:",
          result.stats.side_conditions_auto,
          result.stats.side_conditions_manual)
