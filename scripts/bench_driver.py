#!/usr/bin/env python3
"""Benchmark the verification driver: serial vs parallel vs warm cache.

Verifies every case study three ways —

  1. ``jobs=1``, no cache          (the serial reference),
  2. ``jobs=N`` (default 4)        (the process-pool scheduler),
  3. ``jobs=1``, warm cache        (every function a cache hit),

asserts that all three produce identical ``ProgramResult`` contents
(per-function ok / Stats counters / error text), and prints the
wall-clock speedups.  On a multi-core machine the parallel run shows a
>=2x speedup and the warm-cache run a >=5x speedup over the serial
reference; on a single-core machine only the cache speedup is physically
available, and the parallel assertion is skipped (reported as such).

Run:  PYTHONPATH=src python scripts/bench_driver.py [--jobs N] [--repeat K]
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.frontend import verify_files                    # noqa: E402
from repro.report import (EXTRA_STUDIES, FIGURE7_STUDIES,  # noqa: E402
                          casestudies_dir)


def fingerprint(outcomes):
    """The driver-visible contents of every ProgramResult: function
    order, outcome, deterministic stats, and exact error text."""
    fp = {}
    for study, out in outcomes.items():
        fp[study] = [(name, fr.ok, fr.stats.counters(), fr.format_error())
                     for name, fr in out.result.functions.items()]
    return fp


def run(paths, label, repeat, **kwargs):
    best, outcomes = None, None
    for _ in range(repeat):
        t0 = time.perf_counter()
        outcomes = verify_files(paths, **kwargs)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    ok = all(o.ok for o in outcomes.values())
    print(f"  {label:<28} {best * 1e3:8.1f}ms   "
          f"{'all verified' if ok else 'FAILURES'}")
    return best, outcomes


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=4)
    ap.add_argument("--repeat", type=int, default=3,
                    help="take the best of K runs (warm-machine timing)")
    args = ap.parse_args(argv)

    base = casestudies_dir()
    paths = [base / f"{stem}.c"
             for stem, _cls in FIGURE7_STUDIES + EXTRA_STUDIES]
    cores = os.cpu_count() or 1
    print(f"bench_driver: {len(paths)} case studies, "
          f"{cores} CPU core(s), jobs={args.jobs}")

    t_serial, serial = run(paths, "serial (jobs=1)", args.repeat, jobs=1)
    t_par, parallel = run(paths, f"parallel (jobs={args.jobs})",
                          args.repeat, jobs=args.jobs)

    cache_dir = tempfile.mkdtemp(prefix="rc-cache-bench-")
    try:
        run(paths, "cold cache (jobs=1)", 1, jobs=1, cache=True,
            cache_dir=cache_dir)
        t_warm, warm = run(paths, "warm cache (jobs=1)", args.repeat,
                           jobs=1, cache=True, cache_dir=cache_dir)
        hits = sum(o.metrics.cache_hits for o in warm.values())
        misses = sum(o.metrics.cache_misses for o in warm.values())
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    failures = []
    if fingerprint(serial) != fingerprint(parallel):
        failures.append("parallel results differ from serial results")
    if fingerprint(serial) != fingerprint(warm):
        failures.append("warm-cache results differ from serial results")
    if misses != 0:
        failures.append(f"warm cache had {misses} misses (expected 0)")

    speedup_par = t_serial / t_par if t_par else float("inf")
    speedup_warm = t_serial / t_warm if t_warm else float("inf")
    print()
    print(f"  parallel speedup:   {speedup_par:5.2f}x  "
          f"(jobs={args.jobs} vs jobs=1)")
    print(f"  warm-cache speedup: {speedup_warm:5.2f}x  "
          f"({hits} hits / {misses} misses)")

    if speedup_warm < 5.0:
        failures.append(f"warm-cache speedup {speedup_warm:.2f}x < 5x")
    if cores >= 2:
        if speedup_par < 2.0:
            failures.append(f"parallel speedup {speedup_par:.2f}x < 2x "
                            f"on a {cores}-core machine")
    else:
        print("  (single core: the >=2x parallel target needs >=2 cores; "
              "equality still asserted)")

    if failures:
        print("\nFAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: identical results across modes, speedup targets met.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
