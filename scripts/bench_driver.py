#!/usr/bin/env python3
"""Benchmark the verification driver: serial vs parallel vs warm cache.

Verifies every case study five ways —

  1. ``jobs=1``, no cache          (the serial reference),
  2. ``jobs=N`` (default 4)        (the process-pool scheduler),
  3. ``jobs=1``, warm cache        (every function a cache hit),
  4. incremental, cold state       (everything dirty: the full first run),
  5. incremental, no-op rerun      (nothing changed: 0 re-checks),

asserts that all five produce identical ``ProgramResult`` contents
(per-function ok / Stats counters / error text), that the no-op
incremental rerun re-checks **zero** functions, and prints the
wall-clock speedups.  On a multi-core machine the parallel run shows a
>=2x speedup and the warm-cache run a >=5x speedup over the serial
reference; on a single-core machine only the cache speedup is physically
available, and the parallel assertion is skipped (reported as such).

Run:  PYTHONPATH=src python scripts/bench_driver.py [--jobs N] [--repeat K]
                                                    [--json PATH]

``--json`` writes a ``BENCH_driver.json`` artifact in the shared
benchmark schema (see ``repro.driver.benchio`` and
``scripts/bench_solver.py``).
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.frontend import verify_files                    # noqa: E402
from repro.obs import record_run                           # noqa: E402
from repro.report import (EXTRA_STUDIES, FIGURE7_STUDIES,  # noqa: E402
                          casestudies_dir)


def fingerprint(outcomes):
    """The driver-visible contents of every ProgramResult: function
    order, outcome, deterministic stats, and exact error text."""
    fp = {}
    for study, out in outcomes.items():
        fp[study] = [(name, fr.ok, fr.stats.counters(), fr.format_error())
                     for name, fr in out.result.functions.items()]
    return fp


def run(paths, label, repeat, samples_out=None, **kwargs):
    best, outcomes = None, None
    for _ in range(repeat):
        t0 = time.perf_counter()
        outcomes = verify_files(paths, **kwargs)
        dt = time.perf_counter() - t0
        if samples_out is not None:
            samples_out.append(dt)
        best = dt if best is None else min(best, dt)
    ok = all(o.ok for o in outcomes.values())
    print(f"  {label:<28} {best * 1e3:8.1f}ms   "
          f"{'all verified' if ok else 'FAILURES'}")
    return best, outcomes


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=4)
    ap.add_argument("--repeat", type=int, default=3,
                    help="take the best of K runs (warm-machine timing)")
    ap.add_argument("--json", dest="json_path", default="",
                    help="write a BENCH_driver.json artifact to PATH")
    args = ap.parse_args(argv)

    base = casestudies_dir()
    paths = [base / f"{stem}.c"
             for stem, _cls in FIGURE7_STUDIES + EXTRA_STUDIES]
    cores = os.cpu_count() or 1
    print(f"bench_driver: {len(paths)} case studies, "
          f"{cores} CPU core(s), jobs={args.jobs}")

    s_serial, s_par, s_warm = [], [], []
    t_serial, serial = run(paths, "serial (jobs=1)", args.repeat, jobs=1,
                           samples_out=s_serial)
    t_par, parallel = run(paths, f"parallel (jobs={args.jobs})",
                          args.repeat, jobs=args.jobs, samples_out=s_par)

    cache_dir = tempfile.mkdtemp(prefix="rc-cache-bench-")
    try:
        run(paths, "cold cache (jobs=1)", 1, jobs=1, cache=True,
            cache_dir=cache_dir)
        t_warm, warm = run(paths, "warm cache (jobs=1)", args.repeat,
                           jobs=1, cache=True, cache_dir=cache_dir,
                           samples_out=s_warm)
        hits = sum(o.metrics.cache_hits for o in warm.values())
        misses = sum(o.metrics.cache_misses for o in warm.values())
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    s_incr_cold, s_incr_noop = [], []
    incr_dir = tempfile.mkdtemp(prefix="rc-incr-bench-")
    try:
        _t, incr_cold = run(paths, "incremental cold (jobs=1)", 1,
                            jobs=1, cache_dir=incr_dir, incremental=True,
                            samples_out=s_incr_cold)
        t_noop, incr_noop = run(paths, "incremental no-op (jobs=1)",
                                args.repeat, jobs=1, cache_dir=incr_dir,
                                incremental=True,
                                samples_out=s_incr_noop)
        noop_rechecked = sum(o.metrics.functions_dirty
                             for o in incr_noop.values())
        noop_clean = sum(o.metrics.functions_clean
                         for o in incr_noop.values())
    finally:
        shutil.rmtree(incr_dir, ignore_errors=True)

    failures = []
    if fingerprint(serial) != fingerprint(parallel):
        failures.append("parallel results differ from serial results")
    if fingerprint(serial) != fingerprint(warm):
        failures.append("warm-cache results differ from serial results")
    if misses != 0:
        failures.append(f"warm cache had {misses} misses (expected 0)")
    if fingerprint(serial) != fingerprint(incr_cold):
        failures.append("incremental cold results differ from serial")
    if fingerprint(serial) != fingerprint(incr_noop):
        failures.append("incremental no-op results differ from serial")
    if noop_rechecked != 0:
        failures.append(f"no-op incremental rerun re-checked "
                        f"{noop_rechecked} function(s) (expected 0)")

    speedup_par = t_serial / t_par if t_par else float("inf")
    speedup_warm = t_serial / t_warm if t_warm else float("inf")
    speedup_noop = t_serial / t_noop if t_noop else float("inf")
    print()
    print(f"  parallel speedup:   {speedup_par:5.2f}x  "
          f"(jobs={args.jobs} vs jobs=1)")
    print(f"  warm-cache speedup: {speedup_warm:5.2f}x  "
          f"({hits} hits / {misses} misses)")
    print(f"  incremental no-op:  {speedup_noop:5.2f}x  "
          f"({noop_clean} clean / {noop_rechecked} re-checked)")

    if speedup_warm < 5.0:
        failures.append(f"warm-cache speedup {speedup_warm:.2f}x < 5x")
    if cores >= 2:
        if speedup_par < 2.0:
            failures.append(f"parallel speedup {speedup_par:.2f}x < 2x "
                            f"on a {cores}-core machine")
    else:
        print("  (single core: the >=2x parallel target needs >=2 cores; "
              "equality still asserted)")

    if args.json_path:
        from repro.driver.benchio import (bench_envelope, sample_stats,
                                          write_bench_json)
        payload = bench_envelope(
            "driver", [stem for stem, _cls in
                       FIGURE7_STUDIES + EXTRA_STUDIES], args.repeat)
        payload["configs"] = {
            "serial": {"total_wall_s": sample_stats(s_serial)},
            f"parallel_jobs{args.jobs}":
                {"total_wall_s": sample_stats(s_par)},
            "warm_cache": {"total_wall_s": sample_stats(s_warm),
                           "cache_hits": hits, "cache_misses": misses},
            "incremental_cold": {"total_wall_s": sample_stats(s_incr_cold)},
            "incremental_noop": {"total_wall_s": sample_stats(s_incr_noop),
                                 "functions_clean": noop_clean,
                                 "functions_rechecked": noop_rechecked},
        }
        payload["speedup"] = {
            "basis": "min-of-repetitions",
            "parallel": round(speedup_par, 3),
            "warm_cache": round(speedup_warm, 3),
            "incremental_noop": round(speedup_noop, 3),
        }
        payload["checks"] = {
            "fingerprint_identical":
                fingerprint(serial) == fingerprint(parallel)
                and fingerprint(serial) == fingerprint(warm)
                and fingerprint(serial) == fingerprint(incr_cold)
                and fingerprint(serial) == fingerprint(incr_noop),
            "noop_rechecks_zero": noop_rechecked == 0,
            "all_verified": all(o.ok for o in serial.values()),
            "passed": not failures,
        }
        path = write_bench_json(args.json_path, payload)
        print(f"  wrote {path}")

    # One summarising run-ledger record (no-op unless RC_LEDGER is set).
    # The individual verify_files passes above already appended their own
    # "verify" records, each in its own comparability pool; this one
    # tracks the serial reference wall plus the headline speedups.
    record_run("bench", wall_s=t_serial, jobs=1,
               suite=[stem for stem, _cls in
                      FIGURE7_STUDIES + EXTRA_STUDIES],
               extra={"script": "bench_driver",
                      "parallel_jobs": args.jobs,
                      "speedup_parallel": round(speedup_par, 3),
                      "speedup_warm_cache": round(speedup_warm, 3),
                      "speedup_incremental_noop": round(speedup_noop, 3)})

    if failures:
        print("\nFAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: identical results across modes, speedup targets met.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
