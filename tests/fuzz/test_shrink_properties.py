"""Property tests for the shrinker (Hypothesis).

The two contracts a shrinker must keep for auto-filed findings to be
trustworthy regression tests:

* **verdict preservation** — the shrunk params still fail the same way
  (same oracle verdict, and for witness-backed findings the same UB
  class), otherwise the corpus entry pins a different bug than the one
  found;
* **idempotence** — ``shrink(shrink(p)) == shrink(p)`` when the check
  budget is large enough for the greedy descent to converge; a second
  pass finding more to cut would mean campaigns file non-minimal
  entries depending on scheduling.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.generator import TEMPLATES, GenProgram
from repro.fuzz.oracle import CheckVerdict, check_program, run_witness
from repro.fuzz.shrink import shrink_params

pytestmark = pytest.mark.fuzz

# enough for the greedy descent to run to a fixpoint on every template's
# parameter space — idempotence only holds for converged shrinks
CONVERGED = 10_000


def _sample(template_name: str, seed: int) -> dict:
    template = TEMPLATES[template_name]
    return template.sample_params(random.Random(f"shrinkprop:{seed}"))


def _mutant_program(template_name: str, mutant_name: str,
                    params: dict) -> GenProgram:
    prog = TEMPLATES[template_name].build(params)
    mutant = next(m for m in prog.mutants if m.name == mutant_name)
    return GenProgram(template=prog.template, params=prog.params,
                      index=prog.index, source=mutant.source,
                      entry=prog.entry, concurrent=prog.concurrent)


@settings(max_examples=8, deadline=None, database=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_shrunk_params_preserve_checker_verdict(seed):
    # the div template's drop-req-bpos mutant is reliably rejected: the
    # canonical "killed mutant" finding
    params = _sample("div", seed)

    def still_fails(p):
        return check_program(
            _mutant_program("div", "drop-req-bpos", p)
        ).verdict is CheckVerdict.REJECTED

    assert still_fails(params), "precondition: the mutant must be killed"
    shrunk, checks = shrink_params("div", params, still_fails,
                                   max_checks=CONVERGED)
    assert still_fails(shrunk)
    assert checks <= CONVERGED
    # shrinking never grows a parameter past its starting point
    for key, value in shrunk.items():
        if isinstance(value, int) and not isinstance(value, bool):
            assert value <= params[key]


@settings(max_examples=6, deadline=None, database=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_shrunk_params_preserve_ub_class(seed):
    # witness-backed finding: shrinking must keep demonstrating the
    # *same* UB class, not merely any failure
    params = _sample("div", seed)
    check = check_program(TEMPLATES["div"].build(params))
    assert check.verdict is CheckVerdict.ACCEPTED and check.tp is not None
    ub = run_witness("div", "drop-req-bpos", params, check.tp)
    assert ub is not None, "precondition: the witness demonstrates UB"

    def same_ub(p):
        c = check_program(TEMPLATES["div"].build(p))
        if c.verdict is not CheckVerdict.ACCEPTED or c.tp is None:
            return False
        return run_witness("div", "drop-req-bpos", p, c.tp) == ub

    shrunk, _ = shrink_params("div", params, same_ub,
                              max_checks=CONVERGED)
    assert same_ub(shrunk)


@settings(max_examples=8, deadline=None, database=None)
@given(template=st.sampled_from(["div", "arith", "loop_sum"]),
       seed=st.integers(min_value=0, max_value=10_000))
def test_converged_shrink_is_idempotent(template, seed):
    params = _sample(template, seed)

    def always_fails(p):
        # predicate-independence: idempotence is a property of the
        # descent itself, so use the most permissive failure predicate
        return True

    once, _ = shrink_params(template, params, always_fails,
                            max_checks=CONVERGED)
    twice, extra = shrink_params(template, once, always_fails,
                                 max_checks=CONVERGED)
    assert twice == once
    # and with everything at its floor, the second pass is nearly free
    assert extra <= len(once)


@settings(max_examples=8, deadline=None, database=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_idempotent_under_real_predicate(seed):
    params = _sample("div", seed)

    def still_fails(p):
        return check_program(
            _mutant_program("div", "drop-req-bpos", p)
        ).verdict is CheckVerdict.REJECTED

    once, _ = shrink_params("div", params, still_fails,
                            max_checks=CONVERGED)
    twice, _ = shrink_params("div", once, still_fails,
                             max_checks=CONVERGED)
    assert twice == once


def test_truncated_shrink_is_not_trusted_as_minimal():
    # a tiny max_checks can stop mid-descent; campaigns therefore always
    # converge before filing (finalize_findings uses the default budget
    # on re-shrink, and the property above pins convergence semantics)
    params = {"a": 1_000_000, "b": 900_000}
    once, checks = shrink_params("arith", params, lambda p: True,
                                 max_checks=1)
    assert checks == 1
    again, _ = shrink_params("arith", once, lambda p: True,
                             max_checks=CONVERGED)
    assert again != once or once == params
