"""End-to-end campaign tests (marked ``fuzz``: excluded from the
fast inner loop via ``-m "not slow and not fuzz"``)."""

import json

import pytest

from repro.fuzz import CampaignConfig, run_campaign
from repro.fuzz.generator import generate_program
from repro.fuzz.mutator import MutantVerdict, evaluate_mutants

pytestmark = pytest.mark.fuzz


def test_small_campaign_is_clean():
    stats = run_campaign(CampaignConfig(seed=0, count=16, trials=3))
    assert stats.programs == 16
    assert stats.soundness_violations == 0
    assert stats.checker_crashes == 0
    assert stats.accept_rate == 1.0
    assert stats.kill_rate >= 0.8
    assert stats.ok


def test_campaign_is_pure_function_of_seed():
    cfg = CampaignConfig(seed=7, count=10, trials=2)
    a = run_campaign(cfg).to_dict(deterministic=True)
    b = run_campaign(cfg).to_dict(deterministic=True)
    assert a == b
    # a different seed explores a different part of the space
    c = run_campaign(CampaignConfig(seed=8, count=10, trials=2))
    assert c.to_dict(deterministic=True) != a


def test_stats_json_is_serializable_and_versioned():
    stats = run_campaign(CampaignConfig(seed=1, count=6, trials=2))
    blob = json.loads(stats.to_json())
    assert blob["fuzz_schema_version"] == 2
    assert "schema_version" not in blob          # the v1 spelling is gone
    assert blob["programs"] == 6
    assert "per_template" in blob
    assert blob["coverage"]["coverage_schema_version"] >= 1
    assert blob["rounds"] >= 1


def test_stats_roundtrip_through_json():
    from repro.fuzz import CampaignStats
    stats = run_campaign(CampaignConfig(seed=1, count=6, trials=2))
    back = CampaignStats.from_dict(json.loads(stats.to_json()))
    assert back.to_dict(deterministic=True) == \
        stats.to_dict(deterministic=True)


def test_budget_campaign_replays_from_count():
    budget = run_campaign(CampaignConfig(seed=3, budget_s=2.0, trials=2,
                                         round_size=8))
    assert budget.programs >= 8
    replay = run_campaign(CampaignConfig(seed=3, count=budget.programs,
                                         trials=2, round_size=8))
    assert replay.to_dict(deterministic=True) == \
        budget.to_dict(deterministic=True)


def test_mutation_kill_rate_on_fixed_sample():
    progs = [generate_program(0, i) for i in range(8)]
    results = evaluate_mutants(progs, jobs=1)
    assert results
    killed = sum(r.verdict is MutantVerdict.KILLED for r in results)
    assert killed / len(results) >= 0.8
    assert not any(r.verdict is MutantVerdict.CRASH for r in results)
    # the checker is currently sound on the template space: nothing
    # accepted should be demonstrably UB
    assert not any(r.verdict is MutantVerdict.SURVIVED_DEMONSTRATED
                   for r in results)
