"""End-to-end campaign tests (marked ``fuzz``: excluded from the
fast inner loop via ``-m "not slow and not fuzz"``)."""

import json

import pytest

from repro.fuzz import CampaignConfig, run_campaign
from repro.fuzz.generator import generate_program
from repro.fuzz.mutator import MutantVerdict, evaluate_mutants

pytestmark = pytest.mark.fuzz


def test_small_campaign_is_clean():
    stats = run_campaign(CampaignConfig(seed=0, count=16, trials=3))
    assert stats.programs == 16
    assert stats.soundness_violations == 0
    assert stats.checker_crashes == 0
    assert stats.accept_rate == 1.0
    assert stats.kill_rate >= 0.8
    assert stats.ok


def test_campaign_is_pure_function_of_seed():
    cfg = CampaignConfig(seed=7, count=10, trials=2)
    a = run_campaign(cfg).to_dict(deterministic=True)
    b = run_campaign(cfg).to_dict(deterministic=True)
    assert a == b
    # a different seed explores a different part of the space
    c = run_campaign(CampaignConfig(seed=8, count=10, trials=2))
    assert c.to_dict(deterministic=True) != a


def test_stats_json_is_serializable_and_versioned():
    stats = run_campaign(CampaignConfig(seed=1, count=6, trials=2,
                                        fuel=12345))
    blob = json.loads(stats.to_json())
    assert blob["fuzz_schema_version"] == 3
    assert "schema_version" not in blob          # the v1 spelling is gone
    assert blob["programs"] == 6
    assert blob["fuel"] == 12345                 # shrink knobs ride along
    assert "per_template" in blob
    assert blob["coverage"]["coverage_schema_version"] >= 1
    assert blob["rounds"] >= 1


def test_stats_roundtrip_through_json():
    from repro.fuzz import CampaignStats
    stats = run_campaign(CampaignConfig(seed=1, count=6, trials=2))
    back = CampaignStats.from_dict(json.loads(stats.to_json()))
    assert back.to_dict(deterministic=True) == \
        stats.to_dict(deterministic=True)


def test_budget_campaign_replays_from_count():
    budget = run_campaign(CampaignConfig(seed=3, budget_s=2.0, trials=2,
                                         round_size=8))
    assert budget.programs >= 8
    replay = run_campaign(CampaignConfig(seed=3, count=budget.programs,
                                         trials=2, round_size=8))
    assert replay.to_dict(deterministic=True) == \
        budget.to_dict(deterministic=True)


def test_mutant_unit_keys_are_campaign_global(monkeypatch):
    # The warm PoolSession memoises elaborated programs by unit key
    # across batches, so keys must never repeat between rounds: a
    # repeating key would serve round N a stale elaboration from round M.
    from repro.fuzz import mutator as mutator_mod
    from repro.fuzz.oracle import CheckResult, CheckVerdict
    batches = []

    def record_check_batch(progs, jobs=1, coverage=False, session=None):
        batches.append([key for key, _ in progs])
        return {key: CheckResult(CheckVerdict.REJECTED)
                for key, _ in progs}

    monkeypatch.setattr(mutator_mod, "check_batch", record_check_batch)
    evaluate_mutants([generate_program(0, i) for i in range(4)])
    evaluate_mutants([generate_program(0, i) for i in range(4, 8)])
    keys = [k for batch in batches for k in batch]
    assert keys and len(keys) == len(set(keys))


def test_deterministic_view_excludes_corpus_filing():
    # --write-corpus --verify-replay: the replay runs corpus-less, so
    # the filing counters and per-finding paths must not participate in
    # the deterministic comparison.
    from repro.fuzz import CampaignStats, Finding

    def stats(corpus_path):
        s = CampaignStats(seed=0)
        s.findings = [Finding("mutant-survivor", "div", {"a": 2, "b": 1},
                              index=3, mutant="drop-req-bpos",
                              corpus_path=corpus_path)]
        if corpus_path:
            s.corpus_written, s.corpus_deduped = 1, 2
        return s

    filed, bare = stats("tests/fuzz/corpus/x.json"), stats(None)
    assert filed.to_json(deterministic=True) == \
        bare.to_json(deterministic=True)
    assert filed.to_json() != bare.to_json()    # the full view keeps them


def test_mutation_kill_rate_on_fixed_sample():
    progs = [generate_program(0, i) for i in range(8)]
    results = evaluate_mutants(progs, jobs=1)
    assert results
    killed = sum(r.verdict is MutantVerdict.KILLED for r in results)
    assert killed / len(results) >= 0.8
    assert not any(r.verdict is MutantVerdict.CRASH for r in results)
    # the checker is currently sound on the template space: nothing
    # accepted should be demonstrably UB
    assert not any(r.verdict is MutantVerdict.SURVIVED_DEMONSTRATED
                   for r in results)
