"""Coverage signatures, the cumulative map, and the steering policy."""

import random

import pytest

from repro.fuzz.coverage import (SATURATED_MIN_RUNS, STALE_ROUNDS,
                                 CoverageMap, SteeringState, oracle_keys,
                                 template_weights)
from repro.fuzz.generator import TEMPLATES, generate_program
from repro.fuzz.oracle import check_program
from repro.trace.signature import RULE_PREFIX, rule_keys, signature_of

pytestmark = pytest.mark.fuzz


def _signature(name="arith", seed="cov"):
    template = TEMPLATES[name]
    params = template.sample_params(random.Random(f"{seed}:{name}"))
    res = check_program(template.build(params), coverage=True)
    assert res.signature is not None
    return res.signature


class TestSignatures:
    def test_coverage_check_carries_signature(self):
        sig = _signature("arith")
        assert sig, "a verified program must exercise at least one rule"
        assert any(k.startswith(RULE_PREFIX) for k in sig)
        assert any(k.startswith("step:") for k in sig)

    def test_rule_keys_carry_dispatch_granularity(self):
        # (judgment, type-constructor) pairs, not just rule names: an
        # arith program must show which operand types hit the binop rule
        sig = _signature("arith")
        binops = [k for k in rule_keys(sig) if ":binop:" in k]
        assert binops and all("int" in k for k in binops)

    def test_signature_is_deterministic(self):
        assert _signature("loop_sum") == _signature("loop_sum")

    def test_templates_differ_in_signature(self):
        assert _signature("arith") != _signature("ptr_inc")

    def test_no_coverage_means_no_signature(self):
        template = TEMPLATES["arith"]
        params = template.sample_params(random.Random("cov:off"))
        res = check_program(template.build(params), coverage=False)
        assert res.signature is None

    def test_signature_of_none_trace(self):
        assert signature_of(None) == frozenset()


class TestCoverageMap:
    def test_observe_reports_new_keys_once(self):
        m = CoverageMap()
        assert set(m.observe(["a", "b"], 3)) == {"a", "b"}
        assert m.observe(["a"], 5) == []
        assert m.counts == {"a": 2, "b": 1}
        assert m.first_seen == {"a": 3, "b": 3}

    def test_first_seen_takes_minimum_index(self):
        m = CoverageMap()
        m.observe(["k"], 9)
        m.observe(["k"], 2)
        assert m.first_seen["k"] == 2

    def test_merge_is_associative_and_order_independent(self):
        def build(obs):
            m = CoverageMap()
            for keys, idx in obs:
                m.observe(keys, idx)
            return m

        a = build([(["x", "y"], 1), (["x"], 4)])
        b = build([(["y", "z"], 0)])
        ab = build([])
        ab.merge(a)
        ab.merge(b)
        ba = build([])
        ba.merge(b)
        ba.merge(a)
        assert ab.counts == ba.counts == {"x": 2, "y": 2, "z": 1}
        assert ab.first_seen == ba.first_seen == {"x": 1, "y": 0, "z": 0}

    def test_missing_lists_unexercised_baseline_keys(self):
        m = CoverageMap()
        m.observe(["rule:a", "rule:b"], 0)
        assert m.missing(["rule:a", "rule:c", "rule:b"]) == ["rule:c"]

    def test_roundtrip_and_schema_guard(self):
        m = CoverageMap()
        m.observe(["rule:a", "step:b"], 7)
        back = CoverageMap.from_dict(m.to_dict())
        assert back.counts == m.counts and back.first_seen == m.first_seen
        bad = m.to_dict()
        bad["coverage_schema_version"] = 999
        with pytest.raises(ValueError, match="schema"):
            CoverageMap.from_dict(bad)

    def test_category_counts(self):
        m = CoverageMap()
        m.observe(["rule:a", "rule:b", "exec:pass", "ub:oob"], 0)
        assert m.category_counts() == {"exec": 1, "rule": 2, "ub": 1}


class TestSteering:
    def test_unexplored_templates_get_boosted(self):
        state = SteeringState()
        state.observe("old", 0, 0)
        w = template_weights(["old", "new"], state, 1)
        assert w["new"] > w["old"]

    def test_novel_templates_keep_their_boost(self):
        state = SteeringState()
        for _ in range(SATURATED_MIN_RUNS):
            state.observe("novel", 2, 5)
            state.observe("stale", 0, 0)
        w = template_weights(["novel", "stale"], state, 5 + STALE_ROUNDS)
        assert w["novel"] > w["stale"]

    def test_saturated_templates_are_damped_but_never_zero(self):
        state = SteeringState()
        for _ in range(SATURATED_MIN_RUNS):
            state.observe("sat", 0, 0)
        w = template_weights(["sat"], state, STALE_ROUNDS + 5)
        assert 0.0 < w["sat"] < 1.0

    def test_lightly_sampled_templates_are_never_damped(self):
        # fewer than SATURATED_MIN_RUNS samples is not enough evidence
        # of saturation, even with no new keys for many rounds
        state = SteeringState()
        state.observe("young", 0, 0)
        w = template_weights(["young"], state, 50)
        assert w["young"] >= 1.0

    def test_weights_are_pure_function_of_history(self):
        state = SteeringState()
        state.observe("a", 3, 0)
        state.observe("b", 0, 0)
        assert template_weights(["a", "b"], state, 1) == \
            template_weights(["a", "b"], state, 1)

    def test_weighted_generation_is_deterministic(self):
        w = {"arith": 5.0, "div": 0.5}
        a = generate_program(11, 4, ["arith", "div"], weights=w)
        b = generate_program(11, 4, ["arith", "div"], weights=w)
        assert a.source == b.source and a.template == b.template

    def test_oracle_keys_vocabulary(self):
        assert oracle_keys("pass", None) == ["exec:pass"]
        assert oracle_keys("ub", "use-after-free") == \
            ["exec:ub", "ub:use-after-free"]
        assert oracle_keys(None, None) == []
