"""The shard/merge protocol: campaigns are byte-identical across shard
counts, and distributed per-shard stats merge back into exactly the
in-process campaign."""

import json
from pathlib import Path

import pytest

from repro.fuzz import (CampaignConfig, CampaignStats, Finding,
                        finalize_findings, merge_shard_stats, run_campaign,
                        run_shard_campaign)

pytestmark = pytest.mark.fuzz


def _cfg(**kw):
    base = dict(seed=0, count=12, trials=2, round_size=6, coverage=True)
    base.update(kw)
    return CampaignConfig(**base)


def test_in_process_sharding_is_byte_identical():
    one = run_campaign(_cfg(shards=1))
    four = run_campaign(_cfg(shards=4))
    assert one.to_json(deterministic=True) == \
        four.to_json(deterministic=True)


def test_in_process_sharding_is_byte_identical_when_steered():
    # steering weights are computed at round barriers from the merged
    # coverage of completed rounds, so they cannot depend on sharding
    one = run_campaign(_cfg(shards=1, steer=True))
    three = run_campaign(_cfg(shards=3, steer=True))
    assert one.to_json(deterministic=True) == \
        three.to_json(deterministic=True)


def test_sharding_files_identical_corpus_entries(tmp_path):
    # force findings by disabling shrink-resistant clean behaviour: use
    # a campaign over a template mix known to stay clean, then compare
    # the corpus dirs — both empty is still "identical", and if a future
    # checker regression produces findings, dedup + central filing must
    # keep the two dirs in lockstep.
    d1, d4 = tmp_path / "s1", tmp_path / "s4"
    one = run_campaign(_cfg(shards=1, write_corpus=True, corpus_dir=d1))
    four = run_campaign(_cfg(shards=4, write_corpus=True, corpus_dir=d4))

    files1 = sorted(p.name for p in d1.glob("*.json")) if d1.exists() else []
    files4 = sorted(p.name for p in d4.glob("*.json")) if d4.exists() else []
    assert files1 == files4
    for name in files1:
        assert (d1 / name).read_text() == (d4 / name).read_text()
    assert one.corpus_written == four.corpus_written
    assert one.corpus_deduped == four.corpus_deduped


def test_distributed_merge_equals_in_process_blind():
    cfg = _cfg(shards=4, steer=False)
    shards = [run_shard_campaign(cfg, k) for k in range(4)]
    assert sum(s.programs for s in shards) == cfg.count
    merged = merge_shard_stats(shards, cfg)
    in_process = run_campaign(cfg)
    assert merged.to_json(deterministic=True) == \
        in_process.to_json(deterministic=True)


def test_shard_stats_roundtrip_through_json():
    cfg = _cfg(shards=2, steer=False)
    shards = [run_shard_campaign(cfg, k) for k in range(2)]
    revived = [CampaignStats.from_dict(json.loads(s.to_json()))
               for s in shards]
    merged = merge_shard_stats(revived, cfg)
    assert merged.to_json(deterministic=True) == \
        merge_shard_stats(shards, cfg).to_json(deterministic=True)


def test_merge_rejects_incomplete_and_mismatched_shards():
    cfg = _cfg(shards=3, steer=False)
    shards = [run_shard_campaign(cfg, k) for k in range(2)]  # missing 2
    with pytest.raises(ValueError, match="missing shards"):
        merge_shard_stats(shards, cfg)
    with pytest.raises(ValueError, match="duplicate"):
        merge_shard_stats([shards[0], shards[0]], cfg)
    other = run_shard_campaign(_cfg(seed=99, shards=3, steer=False), 2)
    with pytest.raises(ValueError, match="different campaign"):
        merge_shard_stats(shards + [other], cfg)


def test_finalize_dedups_corpus_by_signature_key(tmp_path):
    # two findings that reduce to the same (kind, template, mutant,
    # UB class, params) are one bug: one corpus entry, one dedup tick —
    # whichever shard surfaced each copy
    params = {"a": 3, "b": 1}
    stats = CampaignStats(seed=0)
    stats.findings = [
        Finding("mutant-survivor", "div", dict(params), index=9,
                mutant="drop-req-bpos", detail="copy from shard 1"),
        Finding("mutant-survivor", "div", dict(params), index=2,
                mutant="drop-req-bpos", detail="copy from shard 0"),
        Finding("mutant-survivor", "div", {"a": 7, "b": 2}, index=5,
                mutant="drop-req-bpos", detail="a different bug"),
    ]
    cfg = CampaignConfig(seed=0, count=12, shrink=False, write_corpus=True,
                         corpus_dir=tmp_path)
    finalize_findings(stats, cfg)
    assert [f.index for f in stats.findings] == [2, 5, 9]  # sorted
    assert stats.corpus_written == 2
    assert stats.corpus_deduped == 1
    assert len(list(tmp_path.glob("*.json"))) == 2
    # the surviving entry for the duplicated bug is the lowest-index one
    filed = [f for f in stats.findings if f.corpus_path]
    assert sorted(f.index for f in filed) == [2, 5]


def test_merge_uses_and_validates_shard_fuel(tmp_path, monkeypatch):
    # Shrink predicates replay findings at cfg.fuel, so a central merge
    # must take fuel from the shard stats — repeating a non-default
    # --fuel on the merge command line must not be required.
    cfg = _cfg(shards=2, steer=False, fuel=777)
    shards = [run_shard_campaign(cfg, k) for k in range(2)]
    for s in shards:
        assert json.loads(s.to_json())["fuel"] == 777
    merged = merge_shard_stats(shards, cfg)
    assert merged.fuel == 777

    # a shard run at a different fuel belongs to a different campaign
    blob = json.loads(shards[1].to_json())
    blob["fuel"] = 1_000_000
    with pytest.raises(ValueError, match="different campaign"):
        merge_shard_stats([shards[0], CampaignStats.from_dict(blob)], cfg)

    # script-level merge: every shrink-relevant knob reaches the
    # finalisation config from the shard stats, not the CLI defaults
    import importlib.util
    script = Path(__file__).resolve().parents[2] / "scripts" / "fuzz.py"
    spec = importlib.util.spec_from_file_location("fuzz_script", script)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    paths = []
    for k, s in enumerate(shards):
        p = tmp_path / f"shard{k}.json"
        p.write_text(s.to_json())
        paths.append(str(p))
    captured = {}
    real_merge = mod.merge_shard_stats

    def spy(shard_stats, merge_cfg):
        captured["cfg"] = merge_cfg
        return real_merge(shard_stats, merge_cfg)

    monkeypatch.setattr(mod, "merge_shard_stats", spy)
    out = tmp_path / "merged.json"
    assert mod.main(["--merge", *paths, "--stats", str(out)]) == 0
    assert captured["cfg"].fuel == 777
    assert json.loads(out.read_text())["fuel"] == 777


def test_shard_campaign_rejects_bad_shard_ids_and_time_budgets():
    with pytest.raises(ValueError, match="outside"):
        run_shard_campaign(_cfg(shards=2), 2)
    with pytest.raises(ValueError, match="count budget"):
        run_shard_campaign(CampaignConfig(seed=0, budget_s=1.0, shards=2),
                           0)
