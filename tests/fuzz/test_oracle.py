"""Oracle tests: verdict classification and witness execution."""

import random

import pytest

from repro.caesium import FuelExhausted, UndefinedBehavior
from repro.caesium.eval import Machine
from repro.fuzz.generator import TEMPLATES, GenProgram, generate_program
from repro.fuzz.oracle import (CheckVerdict, ExecStatus, check_batch,
                               check_program, execute_program, run_witness)
from repro.lang.elaborate import elaborate_source


def _base(name, seed="oracle"):
    template = TEMPLATES[name]
    params = template.sample_params(random.Random(f"{seed}:{name}"))
    return template.build(params)


def _mutated(prog, mutant):
    return GenProgram(template=prog.template, params=prog.params,
                      index=prog.index, source=mutant.source,
                      entry=prog.entry, concurrent=prog.concurrent)


class TestCheckVerdicts:
    def test_sound_program_accepted(self):
        res = check_program(_base("arith"))
        assert res.verdict is CheckVerdict.ACCEPTED
        assert res.tp is not None

    def test_unsound_mutant_rejected(self):
        prog = _base("div")
        mutant = next(m for m in prog.mutants if m.name == "drop-req-bpos")
        res = check_program(_mutated(prog, mutant))
        assert res.verdict is CheckVerdict.REJECTED
        # elaboration succeeded, only the proof failed — tp survives so
        # witnesses can still run on the rejected source
        assert res.tp is not None

    def test_garbage_source_never_escapes_classifier(self):
        # Whatever the toolchain does with unparsable input, the oracle
        # must fold it into a verdict — CRASH for a non-VerificationError.
        junk = GenProgram(template="arith", params={}, index=0,
                          source="int f(int a { return a;", entry="f",
                          concurrent=False)
        res = check_program(junk)
        assert res.verdict in (CheckVerdict.CRASH, CheckVerdict.REJECTED)
        assert res.detail

    def test_batch_matches_serial(self):
        progs = [generate_program(0, i) for i in range(4)]
        batch = check_batch([(f"p{i}", p) for i, p in enumerate(progs)],
                            jobs=1)
        for i, p in enumerate(progs):
            assert batch[f"p{i}"].verdict is check_program(p).verdict


class TestExecution:
    def test_accepted_program_passes(self):
        prog = _base("ptr_inc")
        res = check_program(prog)
        assert res.verdict is CheckVerdict.ACCEPTED
        out = execute_program(prog, res.tp, random.Random("exec"), trials=4)
        assert out.status is ExecStatus.PASS
        assert out.passes == 4

    def test_fuel_exhaustion_is_inconclusive(self):
        # With almost no fuel no trial can finish; the oracle must say
        # "inconclusive", never "pass" and never "bug".
        template = TEMPLATES["loop_sum"]
        prog = template.build({"k": 3, "h": 64})
        res = check_program(prog)
        assert res.verdict is CheckVerdict.ACCEPTED
        out = execute_program(prog, res.tp, random.Random("fuel-exec"),
                              trials=3, fuel=2)
        assert out.status is ExecStatus.INCONCLUSIVE
        assert out.inconclusive == 3
        assert out.passes == 0

    def test_diverging_loop_raises_fuel_not_ub(self):
        # Divergence is not undefined behavior: the machine must surface
        # FuelExhausted (an EvalError outside the UndefinedBehavior
        # hierarchy) so the oracle can classify it as inconclusive.
        tp = elaborate_source("""
        int f() {
            while (1) { }
            return 0;
        }
        """)
        with pytest.raises(FuelExhausted):
            Machine(tp.program, fuel=500).call("f", [])
        assert not issubclass(FuelExhausted, UndefinedBehavior)


class TestWitness:
    def test_witness_demonstrates_signed_overflow(self):
        template = TEMPLATES["arith"]
        params = template.sample_params(random.Random("wit:arith"))
        prog = template.build(params)
        mutant = next(m for m in prog.mutants if m.name == "drop-req-hi")
        assert mutant.has_witness
        res = check_program(_mutated(prog, mutant))
        # The checker kills this mutant, but the witness must still show
        # the mutant *would* hit UB had it been accepted.
        assert res.tp is not None
        ub = run_witness("arith", "drop-req-hi", params, res.tp)
        assert ub == "signed-overflow"

    def test_witnessless_mutants_are_marked(self):
        template = TEMPLATES["loop_sum"]
        params = template.sample_params(random.Random("wit:loop"))
        for mutant in template.build(params).mutants:
            # unsigned wrap-around is defined behavior: no runtime UB
            # witness exists for any loop_sum mutant
            assert not mutant.has_witness


class TestPoolCrashFallback:
    """A non-``VerificationError`` escaping the pooled batch must not
    lose the batch: the oracle resets the session, retries every program
    serially, and attributes the crash to the program that caused it —
    a robustness bug, not a lost round."""

    def _progs(self, n=3):
        return [(f"p{i}", generate_program(0, i)) for i in range(n)]

    def test_pool_failure_retries_serially_with_identical_verdicts(
            self, monkeypatch):
        import repro.fuzz.oracle as oracle_mod
        real = oracle_mod.run_units
        progs = self._progs()
        expected = {key: check_program(p).verdict for key, p in progs}
        calls = {"batch": 0}

        def exploding(units, config, *args, **kwargs):
            if len(units) > 1:          # the pooled batch call
                calls["batch"] += 1
                raise RuntimeError("worker died mid-batch")
            return real(units, config, *args, **kwargs)

        monkeypatch.setattr(oracle_mod, "run_units", exploding)
        out = check_batch(progs, jobs=2)
        assert calls["batch"] == 1
        assert {k: r.verdict for k, r in out.items()} == expected

    def test_pool_failure_resets_the_session(self, monkeypatch):
        import repro.fuzz.oracle as oracle_mod
        from repro.driver import PoolSession
        real = oracle_mod.run_units
        progs = self._progs()
        armed = {"on": False}

        def exploding(units, config, *args, **kwargs):
            if armed["on"] and len(units) > 1:
                raise RuntimeError("worker died mid-batch")
            return real(units, config, *args, **kwargs)

        monkeypatch.setattr(oracle_mod, "run_units", exploding)
        with PoolSession(2) as session:
            # first batch warms the pool; then a poisoned batch must
            # tear it down so later batches get a fresh one
            check_batch(progs, jobs=2, session=session)
            armed["on"] = True
            out = check_batch(progs, jobs=2, session=session)
            assert session.resets == 1
            armed["on"] = False
            again = check_batch(progs, jobs=2, session=session)
        assert all(r.verdict is CheckVerdict.ACCEPTED
                   for r in out.values())
        assert all(r.verdict is CheckVerdict.ACCEPTED
                   for r in again.values())

    def test_crashing_program_is_classified_as_robustness_bug(
            self, monkeypatch):
        import repro.fuzz.oracle as oracle_mod
        real = oracle_mod.run_units
        progs = self._progs()
        poison_source = progs[1][1].source

        def exploding(units, config, *args, **kwargs):
            # the poisoned program kills whatever pool runs it — the
            # batch first, then its own serial retry
            if any(u.source == poison_source for u in units):
                raise RuntimeError("interpreter segfault")
            return real(units, config, *args, **kwargs)

        monkeypatch.setattr(oracle_mod, "run_units", exploding)
        out = check_batch(progs, jobs=2, coverage=True)
        assert out["p1"].verdict is CheckVerdict.CRASH
        assert "interpreter segfault" in out["p1"].detail
        # innocent neighbours keep their verdicts and their coverage
        for key in ("p0", "p2"):
            assert out[key].verdict is CheckVerdict.ACCEPTED
            assert out[key].signature
