"""Coverage-floor regression: the seeded CI campaign must keep
exercising every rule signature pinned in ``coverage_baseline.json``.

A shrinking signature set means a checker change silently stopped
reaching rules (or a generator change stopped producing the programs
that exercise them) — the kind of regression a green test suite does
not catch on its own.  The failure message names exactly the keys that
went missing.

Regenerate the baseline only when coverage is *intentionally* expected
to change:

    PYTHONPATH=src python scripts/fuzz.py --count 24 --round-size 8 \
        --seed 0 --stats /tmp/fuzz.json
    # then copy stats["coverage"]["keys"] into coverage_baseline.json
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import CampaignConfig, run_campaign
from repro.fuzz.coverage import COVERAGE_SCHEMA_VERSION

pytestmark = pytest.mark.fuzz

BASELINE_PATH = Path(__file__).parent / "coverage_baseline.json"


@pytest.fixture(scope="module")
def baseline():
    blob = json.loads(BASELINE_PATH.read_text())
    assert blob["coverage_schema_version"] == COVERAGE_SCHEMA_VERSION
    return blob


@pytest.fixture(scope="module")
def campaign(baseline):
    gen = baseline["generated_by"]
    return run_campaign(CampaignConfig(
        seed=gen["seed"], count=gen["count"],
        round_size=gen["round_size"], steer=gen["steer"],
        trials=gen["trials"], coverage=True))


def test_baseline_is_pinned_and_nontrivial(baseline):
    keys = baseline["keys"]
    assert len(keys) >= 50
    assert keys == sorted(keys)
    assert any(k.startswith("rule:") for k in keys)
    assert any(k.startswith("ub:") for k in keys)


def test_campaign_meets_the_coverage_floor(baseline, campaign):
    missing = campaign.coverage.missing(baseline["keys"])
    assert not missing, (
        "coverage floor regression — these pinned signatures are no "
        "longer exercised by the seeded campaign:\n  "
        + "\n  ".join(missing)
        + "\nIf this is an intentional rule/generator change, "
        "regenerate tests/fuzz/coverage_baseline.json (see module "
        "docstring); otherwise the checker lost reachability.")


def test_floor_diff_mechanism_reports_missing_keys(baseline, campaign):
    # the diff really is a diff: spiking the baseline must surface
    # exactly the spiked key
    spiked = baseline["keys"] + ["rule:imaginary:RULE-NOT-REAL"]
    missing = campaign.coverage.missing(spiked)
    assert missing == ["rule:imaginary:RULE-NOT-REAL"]
