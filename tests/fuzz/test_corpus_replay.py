"""Deterministic replay of the regression corpus.

Every entry under ``tests/fuzz/corpus/`` states the *desired* behavior
for one (template, params[, mutant]) triple.  A fresh fuzzing finding
written here stays red until the underlying bug is fixed; after the fix
the entry keeps guarding against regression.  This module is fast and
unmarked so it runs in the tier-1 inner loop.
"""

import pytest

from repro.fuzz import replay_entry
from repro.fuzz.corpus import CorpusEntry, entry_digest, load_corpus

ENTRIES = load_corpus()


def test_corpus_is_seeded():
    # The shipped corpus pins at least the curated baseline entries.
    assert len(ENTRIES) >= 20


@pytest.mark.parametrize(
    "path,entry", ENTRIES, ids=[p.name for p, _ in ENTRIES])
def test_corpus_entry_replays(path, entry):
    res = replay_entry(entry)
    assert res.ok, f"{path.name}: {res.detail}"
    assert res.checks  # every entry asserts at least one behavior


def test_entry_roundtrip_and_digest_stability():
    entry = CorpusEntry(template="arith",
                        params={"it": "int32_t", "op": "add", "m": 7},
                        expect={"check": "accept", "exec": "pass"})
    again = CorpusEntry.from_dict(entry.to_dict())
    assert again == entry
    assert entry_digest(entry) == entry_digest(again)
    # digest ignores dict ordering
    shuffled = CorpusEntry.from_dict(
        dict(reversed(list(entry.to_dict().items()))))
    assert entry_digest(shuffled) == entry_digest(entry)
