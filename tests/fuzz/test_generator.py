"""Generator tests: determinism, coverage, and designed-soundness."""

import random

import pytest

from repro.frontend import verify_source
from repro.fuzz.generator import (DEFAULT_TEMPLATES, TEMPLATES, biased_int,
                                  generate_program)


class TestDeterminism:
    def test_same_seed_same_program(self):
        for i in range(12):
            a = generate_program(0, i)
            b = generate_program(0, i)
            assert a.template == b.template
            assert a.params == b.params
            assert a.source == b.source
            assert [m.source for m in a.mutants] == \
                [m.source for m in b.mutants]

    def test_batching_independent(self):
        # Program (seed, i) never depends on what was generated before
        # it — generating i alone equals generating 0..i in order.
        alone = generate_program(3, 7)
        in_order = [generate_program(3, i) for i in range(8)][7]
        assert alone.source == in_order.source

    def test_different_indices_vary(self):
        sources = {generate_program(0, i).source for i in range(16)}
        assert len(sources) > 4

    def test_build_is_pure(self):
        for name, template in TEMPLATES.items():
            params = template.sample_params(random.Random(f"pure:{name}"))
            assert template.build(params).source == \
                template.build(params).source


class TestCoverage:
    def test_subset_templates_present(self):
        # ints, pointers, structs, loops, calls, optional/own, atomics
        assert {"arith", "div", "abs", "loop_sum", "ptr_inc", "split",
                "struct_swap", "optional_take", "call_chain",
                "spinlock"} <= set(DEFAULT_TEMPLATES)

    def test_every_template_has_mutants(self):
        for name, template in TEMPLATES.items():
            params = template.sample_params(random.Random(f"mut:{name}"))
            prog = template.build(params)
            assert prog.mutants, name
            for m in prog.mutants:
                assert m.source != prog.source, (name, m.name)

    def test_boundary_bias(self):
        rng = random.Random("bias")
        draws = [biased_int(rng, -100, 100) for _ in range(300)]
        assert draws.count(-100) > 15
        assert draws.count(100) > 15
        assert draws.count(0) > 10

    def test_zero_length_buffers_generated(self):
        split = TEMPLATES["split"]
        sizes = {split.sample_params(random.Random(f"z:{i}"))["nbytes"]
                 for i in range(40)}
        assert 0 in sizes


@pytest.mark.parametrize("name", sorted(TEMPLATES))
def test_designed_sound_base_is_accepted(name):
    """Every template's base program must verify — templates live inside
    the checker's complete fragment by construction."""
    template = TEMPLATES[name]
    for s in range(2):
        params = template.sample_params(random.Random(f"acc:{name}:{s}"))
        out = verify_source(template.source(params))
        assert out.ok, f"{name} {params}:\n{out.report()}"
