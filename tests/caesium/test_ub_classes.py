"""One targeted negative test per UB class.

Every :class:`UndefinedBehavior` carries a :class:`UBClass` category;
these tests pin the *exact* category per trigger so the fuzzing oracle
(and any user of ``exc.category``) can rely on the classification, not
on message text.
"""

import pytest

from repro.caesium.eval import Machine
from repro.caesium.layout import INT_TYPES_BY_NAME
from repro.caesium.memory import AllocKind, Memory
from repro.caesium.values import NULL, UBClass, UndefinedBehavior, VInt, VPtr
from repro.lang.elaborate import elaborate_source


def _ub(excinfo) -> UBClass:
    return excinfo.value.category


def _call(src: str, fname: str, args):
    tp = elaborate_source(src)
    return Machine(tp.program).call(fname, args)


class TestLanguageLevel:
    """UB reached from elaborated C programs."""

    def test_signed_overflow(self):
        i32 = INT_TYPES_BY_NAME["int32_t"]
        with pytest.raises(UndefinedBehavior) as e:
            _call("int f(int a, int b) { return a + b; }", "f",
                  [VInt(i32.max_value, i32), VInt(1, i32)])
        assert _ub(e) is UBClass.SIGNED_OVERFLOW

    def test_div_by_zero(self):
        i32 = INT_TYPES_BY_NAME["int32_t"]
        with pytest.raises(UndefinedBehavior) as e:
            _call("int f(int a, int b) { return a / b; }", "f",
                  [VInt(7, i32), VInt(0, i32)])
        assert _ub(e) is UBClass.DIV_BY_ZERO

    def test_poison_read_of_uninitialised_local(self):
        with pytest.raises(UndefinedBehavior) as e:
            _call("int f() { int x; return x; }", "f", [])
        assert _ub(e) is UBClass.POISON

    def test_null_dereference(self):
        with pytest.raises(UndefinedBehavior) as e:
            _call("int f(int *p) { return *p; }", "f", [VPtr(NULL)])
        assert _ub(e) is UBClass.NULL_DEREF


class TestMemoryLevel:
    """UB raised directly by the Caesium memory model."""

    def test_out_of_bounds(self):
        mem = Memory()
        p = mem.allocate(4, AllocKind.HEAP)
        with pytest.raises(UndefinedBehavior) as e:
            mem.load(p, 8)
        assert _ub(e) is UBClass.OUT_OF_BOUNDS

    def test_misaligned_access(self):
        mem = Memory()
        p = mem.allocate(8, AllocKind.HEAP, init=[0] * 8)
        with pytest.raises(UndefinedBehavior) as e:
            mem.load(p + 1, 4, align=4)
        assert _ub(e) is UBClass.MISALIGNED

    def test_use_after_free(self):
        mem = Memory()
        p = mem.allocate(4, AllocKind.HEAP, init=[0] * 4)
        mem.deallocate(p)
        with pytest.raises(UndefinedBehavior) as e:
            mem.load(p, 4)
        assert _ub(e) is UBClass.USE_AFTER_FREE

    def test_free_of_interior_pointer_is_ptr_arith(self):
        mem = Memory()
        p = mem.allocate(4, AllocKind.HEAP, init=[0] * 4)
        with pytest.raises(UndefinedBehavior) as e:
            mem.deallocate(p + 1)
        assert _ub(e) is UBClass.PTR_ARITH

    def test_data_race_between_plain_stores(self):
        mem = Memory(detect_races=True)
        p = mem.allocate(4, AllocKind.HEAP, init=[0] * 4)
        mem.store(p, [1, 0, 0, 0], tid=1)
        with pytest.raises(UndefinedBehavior) as e:
            mem.store(p, [2, 0, 0, 0], tid=2)
        assert _ub(e) is UBClass.DATA_RACE

    def test_atomic_access_does_not_race_with_itself(self):
        mem = Memory(detect_races=True)
        p = mem.allocate(4, AllocKind.HEAP, init=[0] * 4)
        mem.store(p, [1, 0, 0, 0], tid=1, atomic=True)
        mem.store(p, [2, 0, 0, 0], tid=2, atomic=True)  # no raise
        assert mem.load(p, 4, tid=2, atomic=True) == [2, 0, 0, 0]

    def test_cas_on_poison_is_poison(self):
        mem = Memory(detect_races=True)
        p = mem.allocate(4, AllocKind.HEAP)  # uninitialised: poison bytes
        with pytest.raises(UndefinedBehavior) as e:
            mem.compare_exchange(p, [0, 0, 0, 0], [1, 0, 0, 0])
        assert _ub(e) is UBClass.POISON


def test_every_category_is_distinct_string():
    values = [c.value for c in UBClass]
    assert len(values) == len(set(values))
