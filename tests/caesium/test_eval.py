"""Interpreter tests on hand-built Caesium CFGs."""

import pytest

from repro.caesium.eval import EvalError, Machine
from repro.caesium.layout import (INT, SIZE_T, U8, UCHAR, IntLayout, PtrLayout,
                                  StructLayout)
from repro.caesium.syntax import (CASE, Assign, BinOpE, Block, CallE, CastE,
                                  CondGoto, FieldOffset, FnPtrE, Function,
                                  Goto, IntConst, NullE, Program, Ret, SizeOfE,
                                  Switch, Use, VarAddr)
from repro.caesium.values import UndefinedBehavior, VFn, VInt, VPtr

SZ = IntLayout(SIZE_T)
I = IntLayout(INT)


def sz(n):
    return IntConst(n, SIZE_T)


def use(name, layout=SZ):
    return Use(VarAddr(name), layout)


class TestStraightLine:
    def test_return_constant(self):
        f = Function("f", [], SZ, [], {"entry": Block([], Ret(sz(7)))}, "entry")
        m = Machine(Program(functions={"f": f}))
        assert m.call("f", []) == VInt(7, SIZE_T)

    def test_local_assignment(self):
        f = Function("f", [], SZ, [("x", SZ)], {
            "entry": Block([Assign(VarAddr("x"), sz(5), SZ)],
                           Ret(BinOpE("*", use("x"), sz(3)))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        assert m.call("f", []) == VInt(15, SIZE_T)

    def test_param_passing(self):
        f = Function("f", [("a", SZ), ("b", SZ)], SZ, [], {
            "entry": Block([], Ret(BinOpE("-", use("a"), use("b")))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        assert m.call("f", [VInt(10, SIZE_T), VInt(4, SIZE_T)]) == VInt(6, SIZE_T)

    def test_uninitialised_local_read_is_ub(self):
        f = Function("f", [], SZ, [("x", SZ)], {
            "entry": Block([], Ret(use("x"))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        with pytest.raises(UndefinedBehavior):
            m.call("f", [])

    def test_sizeof(self):
        s = StructLayout("mem_t", (("len", SZ), ("buffer", PtrLayout())))
        f = Function("f", [], SZ, [], {
            "entry": Block([], Ret(SizeOfE(s, SIZE_T))),
        }, "entry")
        assert Machine(Program(functions={"f": f})).call("f", []) == VInt(16, SIZE_T)

    def test_cast_truncates(self):
        f = Function("f", [("x", SZ)], IntLayout(U8), [], {
            "entry": Block([], Ret(CastE(use("x"), U8))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        assert m.call("f", [VInt(300, SIZE_T)]) == VInt(44, U8)


class TestControlFlow:
    def _max_fn(self):
        return Function("max", [("a", SZ), ("b", SZ)], SZ, [], {
            "entry": Block([], CondGoto(BinOpE("<", use("a"), use("b")),
                                        "ret_b", "ret_a")),
            "ret_a": Block([], Ret(use("a"))),
            "ret_b": Block([], Ret(use("b"))),
        }, "entry")

    def test_cond_goto(self):
        m = Machine(Program(functions={"max": self._max_fn()}))
        assert m.call("max", [VInt(3, SIZE_T), VInt(9, SIZE_T)]) == VInt(9, SIZE_T)
        assert m.call("max", [VInt(9, SIZE_T), VInt(3, SIZE_T)]) == VInt(9, SIZE_T)

    def test_loop_sums(self):
        # size_t f(size_t n) { size_t s = 0; while (n) { s += n; n--; } return s; }
        f = Function("f", [("n", SZ)], SZ, [("s", SZ)], {
            "entry": Block([Assign(VarAddr("s"), sz(0), SZ)], Goto("head")),
            "head": Block([], CondGoto(use("n"), "body", "done")),
            "body": Block([
                Assign(VarAddr("s"), BinOpE("+", use("s"), use("n")), SZ),
                Assign(VarAddr("n"), BinOpE("-", use("n"), sz(1)), SZ),
            ], Goto("head")),
            "done": Block([], Ret(use("s"))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        assert m.call("f", [VInt(10, SIZE_T)]) == VInt(55, SIZE_T)

    def test_infinite_loop_runs_out_of_fuel(self):
        f = Function("f", [], None, [], {
            "entry": Block([], Goto("entry")),
        }, "entry")
        m = Machine(Program(functions={"f": f}), fuel=1000)
        with pytest.raises(EvalError):
            m.call("f", [])

    def test_switch(self):
        f = Function("f", [("x", I)], I, [], {
            "entry": Block([], Switch(use("x", I), ((0, "zero"), (1, "one")),
                                      "other")),
            "zero": Block([], Ret(IntConst(100, INT))),
            "one": Block([], Ret(IntConst(200, INT))),
            "other": Block([], Ret(IntConst(300, INT))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        assert m.call("f", [VInt(0, INT)]) == VInt(100, INT)
        assert m.call("f", [VInt(1, INT)]) == VInt(200, INT)
        assert m.call("f", [VInt(9, INT)]) == VInt(300, INT)


class TestCalls:
    def test_direct_call(self):
        callee = Function("inc", [("x", SZ)], SZ, [], {
            "entry": Block([], Ret(BinOpE("+", use("x"), sz(1)))),
        }, "entry")
        caller = Function("f", [], SZ, [], {
            "entry": Block([], Ret(CallE(FnPtrE("inc"), (sz(41),)))),
        }, "entry")
        m = Machine(Program(functions={"inc": callee, "f": caller}))
        assert m.call("f", []) == VInt(42, SIZE_T)

    def test_function_pointer_call(self):
        callee = Function("twice", [("x", SZ)], SZ, [], {
            "entry": Block([], Ret(BinOpE("*", use("x"), sz(2)))),
        }, "entry")
        caller = Function("f", [("g", PtrLayout())], SZ, [], {
            "entry": Block([], Ret(CallE(Use(VarAddr("g"), PtrLayout()),
                                         (sz(21),)))),
        }, "entry")
        m = Machine(Program(functions={"twice": callee, "f": caller}))
        assert m.call("f", [VFn("twice")]) == VInt(42, SIZE_T)

    def test_locals_freed_on_return(self):
        # returning the address of a local and dereferencing it is UB
        leak = Function("leak", [], PtrLayout(), [("x", SZ)], {
            "entry": Block([Assign(VarAddr("x"), sz(1), SZ)],
                           Ret(VarAddr("x"))),
        }, "entry")
        deref = Function("deref", [], SZ, [("p", PtrLayout())], {
            "entry": Block([Assign(VarAddr("p"), CallE(FnPtrE("leak"), ()),
                                   PtrLayout())],
                           Ret(Use(Use(VarAddr("p"), PtrLayout()), SZ))),
        }, "entry")
        m = Machine(Program(functions={"leak": leak, "deref": deref}))
        with pytest.raises(UndefinedBehavior):
            m.call("deref", [])


class TestUB:
    def test_signed_overflow(self):
        f = Function("f", [("x", I)], I, [], {
            "entry": Block([], Ret(BinOpE("+", use("x", I), IntConst(1, INT)))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        with pytest.raises(UndefinedBehavior):
            m.call("f", [VInt(2**31 - 1, INT)])

    def test_unsigned_wraps(self):
        f = Function("f", [("x", SZ)], SZ, [], {
            "entry": Block([], Ret(BinOpE("+", use("x"), sz(1)))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        assert m.call("f", [VInt(2**64 - 1, SIZE_T)]) == VInt(0, SIZE_T)

    def test_division_by_zero(self):
        f = Function("f", [("x", SZ)], SZ, [], {
            "entry": Block([], Ret(BinOpE("/", sz(1), use("x")))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        with pytest.raises(UndefinedBehavior):
            m.call("f", [VInt(0, SIZE_T)])

    def test_null_deref(self):
        f = Function("f", [], SZ, [], {
            "entry": Block([], Ret(Use(NullE(), SZ))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        with pytest.raises(UndefinedBehavior):
            m.call("f", [])

    def test_operand_type_mismatch_is_internal_error(self):
        f = Function("f", [], SZ, [], {
            "entry": Block([], Ret(BinOpE("+", sz(1), IntConst(1, INT)))),
        }, "entry")
        m = Machine(Program(functions={"f": f}))
        with pytest.raises(EvalError):
            m.call("f", [])


class TestStructsAndPointers:
    def test_field_offset_access(self):
        s = StructLayout("mem_t", (("len", SZ), ("buffer", PtrLayout())))
        # size_t get_len(struct mem_t *d) { return d->len; }
        f = Function("get_len", [("d", PtrLayout("mem_t"))], SZ, [], {
            "entry": Block([], Ret(Use(FieldOffset(
                Use(VarAddr("d"), PtrLayout("mem_t")), s, "len"), SZ))),
        }, "entry")
        m = Machine(Program(structs={"mem_t": s}, functions={"get_len": f}))
        from repro.caesium.values import encode_int
        p = m.memory.allocate(16)
        m.memory.store(p, encode_int(99, SIZE_T), 8)
        assert m.call("get_len", [VPtr(p)]) == VInt(99, SIZE_T)

    def test_pointer_arithmetic_and_store(self):
        # void set(unsigned char *p, size_t i) { *(p + i) = 7; }
        f = Function("set", [("p", PtrLayout()), ("i", SZ)], None, [], {
            "entry": Block([Assign(
                BinOpE("ptr_offset", Use(VarAddr("p"), PtrLayout()), use("i")),
                IntConst(7, UCHAR), IntLayout(UCHAR))], Ret(None)),
        }, "entry")
        m = Machine(Program(functions={"set": f}))
        p = m.memory.allocate(4)
        m.call("set", [VPtr(p), VInt(2, SIZE_T)])
        assert m.memory.load(p + 2, 1) == [7]

    def test_cas_expression(self):
        f = Function("try_lock", [("l", PtrLayout())], IntLayout(U8),
                     [("exp", IntLayout(U8))], {
            "entry": Block([Assign(VarAddr("exp"), IntConst(0, U8),
                                   IntLayout(U8))],
                           Ret(CASE(Use(VarAddr("l"), PtrLayout()),
                                    VarAddr("exp"), IntConst(1, U8),
                                    IntLayout(U8)))),
        }, "entry")
        m = Machine(Program(functions={"try_lock": f}))
        lock = m.memory.allocate(1)
        m.memory.store(lock, [0])
        assert m.call("try_lock", [VPtr(lock)]).value == 1
        assert m.memory.load(lock, 1) == [1]
        # second attempt fails
        assert m.call("try_lock", [VPtr(lock)]).value == 0
