"""Memory-model tests: bounds, liveness, alignment, poison, encode/decode
round-trips, CAS, and the data-race detector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caesium.layout import I32, U64
from repro.caesium.memory import Memory
from repro.caesium.values import (NULL, POISON, Pointer, UndefinedBehavior,
                                  VFn, VInt, VPtr, decode_int, decode_ptr,
                                  encode_int, encode_ptr, encode_value)


class TestEncoding:
    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=80, deadline=None)
    def test_u64_roundtrip(self, n):
        v = decode_int(encode_int(n, U64), U64)
        assert v is not None and v.value == n

    @given(st.integers(-2**31, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_i32_roundtrip(self, n):
        v = decode_int(encode_int(n, I32), I32)
        assert v is not None and v.value == n

    def test_encode_out_of_range(self):
        with pytest.raises(UndefinedBehavior):
            encode_int(-1, U64)

    def test_decode_poison(self):
        assert decode_int([POISON] * 8, U64) is None

    def test_decode_partial_poison(self):
        data = encode_int(7, U64)
        data[3] = POISON
        assert decode_int(data, U64) is None

    def test_ptr_roundtrip(self):
        p = Pointer(3, 16)
        assert decode_ptr(encode_ptr(p)) == VPtr(p)

    def test_null_roundtrip(self):
        assert decode_ptr(encode_ptr(NULL)) == VPtr(NULL)

    def test_mixed_ptr_bytes_poison(self):
        p, q = Pointer(3, 16), Pointer(4, 0)
        data = encode_ptr(p)
        data[0] = encode_ptr(q)[0]
        assert decode_ptr(data) is None

    def test_fn_ptr_roundtrip(self):
        data = encode_value(VFn("alloc"))
        assert decode_ptr(data) == VFn("alloc")

    def test_int_bytes_at_ptr_type_poison(self):
        # no integer-pointer casts in Caesium
        assert decode_ptr(encode_int(42, U64)) is None


class TestMemoryOps:
    def test_alloc_load_store(self):
        m = Memory()
        p = m.allocate(16)
        m.store(p, encode_int(7, U64), align=8)
        assert decode_int(m.load(p, 8, align=8), U64) == VInt(7, U64)

    def test_fresh_memory_is_poison(self):
        m = Memory()
        p = m.allocate(8)
        assert decode_int(m.load(p, 8), U64) is None

    def test_out_of_bounds(self):
        m = Memory()
        p = m.allocate(8)
        with pytest.raises(UndefinedBehavior):
            m.load(p + 1, 8)

    def test_negative_offset(self):
        m = Memory()
        p = m.allocate(8)
        with pytest.raises(UndefinedBehavior):
            m.load(Pointer(p.alloc_id, -1), 1)

    def test_use_after_free(self):
        m = Memory()
        p = m.allocate(8)
        m.deallocate(p)
        with pytest.raises(UndefinedBehavior):
            m.load(p, 1)

    def test_free_interior_pointer_rejected(self):
        m = Memory()
        p = m.allocate(8)
        with pytest.raises(UndefinedBehavior):
            m.deallocate(p + 4)

    def test_null_access(self):
        m = Memory()
        with pytest.raises(UndefinedBehavior):
            m.load(NULL, 1)

    def test_misaligned_access(self):
        m = Memory()
        p = m.allocate(16)
        with pytest.raises(UndefinedBehavior):
            m.load(p + 1, 8, align=8)

    def test_distinct_allocations_disjoint(self):
        m = Memory()
        p, q = m.allocate(8), m.allocate(8)
        m.store(p, encode_int(1, U64))
        m.store(q, encode_int(2, U64))
        assert decode_int(m.load(p, 8), U64) == VInt(1, U64)

    def test_negative_size(self):
        m = Memory()
        with pytest.raises(UndefinedBehavior):
            m.allocate(-1)

    @given(data=st.binary(min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_store_load_roundtrip_bytes(self, data):
        m = Memory()
        p = m.allocate(len(data))
        m.store(p, list(data))
        assert bytes(m.load(p, len(data))) == data


class TestCAS:
    def test_success(self):
        m = Memory()
        p = m.allocate(1)
        m.store(p, [0])
        ok, old = m.compare_exchange(p, [0], [1])
        assert ok and old == [0]
        assert m.load(p, 1) == [1]

    def test_failure_leaves_memory(self):
        m = Memory()
        p = m.allocate(1)
        m.store(p, [5])
        ok, old = m.compare_exchange(p, [0], [1])
        assert not ok and old == [5]
        assert m.load(p, 1) == [5]

    def test_cas_on_poison_is_ub(self):
        m = Memory()
        p = m.allocate(1)
        with pytest.raises(UndefinedBehavior):
            m.compare_exchange(p, [0], [1])


class TestRaceDetector:
    def test_sequential_accesses_ok(self):
        m = Memory(detect_races=True)
        p = m.allocate(1)
        m.store(p, [1], tid=0)
        assert m.load(p, 1, tid=0) == [1]

    def test_unsynchronised_write_write_races(self):
        m = Memory(detect_races=True)
        p = m.allocate(1)
        assert m.races is not None
        m.races.spawn(0, 1)
        m.races.spawn(0, 2)
        m.store(p, [1], tid=1)
        with pytest.raises(UndefinedBehavior):
            m.store(p, [2], tid=2)

    def test_unsynchronised_read_write_races(self):
        m = Memory(detect_races=True)
        p = m.allocate(1)
        assert m.races is not None
        m.races.spawn(0, 1)
        m.races.spawn(0, 2)
        m.load(p, 1, tid=1)
        with pytest.raises(UndefinedBehavior):
            m.store(p, [2], tid=2)

    def test_concurrent_reads_ok(self):
        m = Memory(detect_races=True)
        p = m.allocate(1)
        m.store(p, [1], tid=0)
        assert m.races is not None
        m.races.spawn(0, 1)
        m.races.spawn(0, 2)
        m.load(p, 1, tid=1)
        m.load(p, 1, tid=2)  # no exception

    def test_atomics_do_not_race(self):
        m = Memory(detect_races=True)
        lock = m.allocate(1)
        m.store(lock, [0], tid=0)
        assert m.races is not None
        m.races.spawn(0, 1)
        m.races.spawn(0, 2)
        m.compare_exchange(lock, [0], [1], tid=1)
        m.compare_exchange(lock, [0], [1], tid=2)  # no exception

    def test_lock_protected_accesses_synchronise(self):
        """The spinlock pattern: na accesses protected by CAS handoff."""
        m = Memory(detect_races=True)
        lock = m.allocate(1)
        data = m.allocate(8)
        m.store(lock, [0], tid=0)
        assert m.races is not None
        m.races.spawn(0, 1)
        m.races.spawn(0, 2)
        # Thread 1 acquires, writes, releases.
        ok, _ = m.compare_exchange(lock, [0], [1], tid=1)
        assert ok
        m.store(data, encode_int(7, U64), tid=1)
        m.store(lock, [0], tid=1, atomic=True)  # release
        # Thread 2 acquires (synchronises through the lock), then writes.
        ok, _ = m.compare_exchange(lock, [0], [1], tid=2)
        assert ok
        m.store(data, encode_int(8, U64), tid=2)  # no exception

    def test_unprotected_access_after_lock_still_races(self):
        m = Memory(detect_races=True)
        data = m.allocate(8)
        assert m.races is not None
        m.races.spawn(0, 1)
        m.races.spawn(0, 2)
        m.store(data, encode_int(7, U64), tid=1)
        with pytest.raises(UndefinedBehavior):
            m.load(data, 8, tid=2)

    def test_join_synchronises(self):
        m = Memory(detect_races=True)
        data = m.allocate(8)
        assert m.races is not None
        m.races.spawn(0, 1)
        m.store(data, encode_int(7, U64), tid=1)
        m.races.join_thread(0, 1)
        m.load(data, 8, tid=0)  # no exception after join
