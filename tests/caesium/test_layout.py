"""Layout computation tests (LP64, natural alignment)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caesium.layout import (I32, SIZE_T, U16, U64, U8, ArrayLayout,
                                  IntLayout, LayoutError, PtrLayout,
                                  StructLayout)


class TestIntTypes:
    def test_ranges(self):
        assert I32.min_value == -(2**31)
        assert I32.max_value == 2**31 - 1
        assert SIZE_T.min_value == 0
        assert SIZE_T.max_value == 2**64 - 1

    def test_in_range(self):
        assert I32.in_range(-1)
        assert not SIZE_T.in_range(-1)
        assert not I32.in_range(2**31)

    def test_wrap_unsigned(self):
        assert U8.wrap(256) == 0
        assert U8.wrap(257) == 1
        assert U8.wrap(-1) == 255

    def test_wrap_signed(self):
        assert I32.wrap(2**31) == -(2**31)

    @given(st.integers(-2**70, 2**70))
    @settings(max_examples=80, deadline=None)
    def test_wrap_idempotent_and_in_range(self, n):
        for ty in (U8, U16, U64, I32):
            w = ty.wrap(n)
            assert ty.in_range(w)
            assert ty.wrap(w) == w


class TestStructLayout:
    def test_mem_t_layout(self):
        # struct mem_t { size_t len; unsigned char *buffer; } (Figure 1)
        s = StructLayout("mem_t", (("len", IntLayout(SIZE_T)),
                                   ("buffer", PtrLayout("unsigned char"))))
        assert s.offset_of("len") == 0
        assert s.offset_of("buffer") == 8
        assert s.size == 16
        assert s.align == 8

    def test_padding_between_fields(self):
        s = StructLayout("s", (("a", IntLayout(U8)), ("b", IntLayout(U64))))
        assert s.offset_of("a") == 0
        assert s.offset_of("b") == 8
        assert s.size == 16

    def test_tail_padding(self):
        s = StructLayout("s", (("a", IntLayout(U64)), ("b", IntLayout(U8))))
        assert s.size == 16  # padded to alignment 8

    def test_chunk_layout(self):
        # struct chunk { size_t size; struct chunk *next; } (Figure 3)
        s = StructLayout("chunk", (("size", IntLayout(SIZE_T)),
                                   ("next", PtrLayout("struct chunk"))))
        assert s.size == 16

    def test_union(self):
        u = StructLayout("u", (("a", IntLayout(U64)), ("b", IntLayout(U8))),
                         is_union=True)
        assert u.offset_of("a") == 0
        assert u.offset_of("b") == 0
        assert u.size == 8

    def test_unknown_field(self):
        s = StructLayout("s", (("a", IntLayout(U8)),))
        with pytest.raises(LayoutError):
            s.offset_of("nope")
        with pytest.raises(LayoutError):
            s.field_layout("nope")

    def test_empty_struct(self):
        s = StructLayout("empty", ())
        assert s.size == 0 and s.align == 1

    def test_field_layout(self):
        s = StructLayout("s", (("a", IntLayout(U8)),))
        assert s.field_layout("a") == IntLayout(U8)


class TestArrayLayout:
    def test_size(self):
        a = ArrayLayout(IntLayout(U64), 10)
        assert a.size == 80
        assert a.align == 8

    def test_nested_in_struct(self):
        s = StructLayout("s", (("tag", IntLayout(U8)),
                               ("data", ArrayLayout(IntLayout(U64), 4))))
        assert s.offset_of("data") == 8
        assert s.size == 40


@given(sizes=st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_struct_fields_never_overlap(sizes):
    fields = tuple((f"f{i}", IntLayout(
        {1: U8, 2: U16, 4: I32, 8: U64}[sz])) for i, sz in enumerate(sizes))
    s = StructLayout("t", fields)
    spans = sorted((s.offset_of(n), s.offset_of(n) + l.size)
                   for n, l in fields)
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0
    assert s.size >= max(end for _, end in spans)
    # every field is aligned
    for n, l in fields:
        assert s.offset_of(n) % l.align == 0
