"""Scheduler and race-detection tests: Caesium's interleaving semantics."""

import pytest

from repro.caesium.concurrency import Scheduler, run_concurrently
from repro.caesium.layout import INT, SIZE_T, IntLayout, PtrLayout
from repro.caesium.syntax import (CASE, Assign, BinOpE, Block, CondGoto,
                                  Function, Goto, IntConst, Program, Ret, Use,
                                  VarAddr)
from repro.caesium.values import (UndefinedBehavior, VPtr, decode_int,
                                  encode_int)

SZ = IntLayout(SIZE_T)
I = IntLayout(INT)
PTR = PtrLayout()


def _increment_fn(atomic: bool) -> Function:
    """void inc(size_t *p) { *p = *p + 1; }  (optionally atomic)."""
    return Function("inc", [("p", PTR)], None, [], {
        "entry": Block([Assign(
            Use(VarAddr("p"), PTR),
            BinOpE("+", Use(Use(VarAddr("p"), PTR), SZ, atomic=atomic),
                   IntConst(1, SIZE_T)),
            SZ, atomic=atomic)], Ret(None)),
    }, "entry")


def _cas_loop_fn() -> Function:
    """Lock-free increment via CAS retry loop on a one-byte counter."""
    u8 = IntLayout(__import__("repro.caesium.layout",
                              fromlist=["U8"]).U8)
    from repro.caesium.layout import U8
    return Function("inc", [("p", PTR)], None, [("exp", IntLayout(U8))], {
        "entry": Block([], Goto("retry")),
        "retry": Block(
            [Assign(VarAddr("exp"),
                    Use(Use(VarAddr("p"), PTR), IntLayout(U8), atomic=True),
                    IntLayout(U8))],
            CondGoto(CASE(Use(VarAddr("p"), PTR), VarAddr("exp"),
                          BinOpE("+", Use(VarAddr("exp"), IntLayout(U8)),
                                 IntConst(1, U8)), IntLayout(U8)),
                     "done", "retry")),
        "done": Block([], Ret(None)),
    }, "entry")


class TestScheduler:
    def test_single_thread_runs_to_completion(self):
        prog = Program(functions={"inc": _increment_fn(False)})
        sched = Scheduler(prog, seed=0)
        cell = sched.memory.allocate(8)
        sched.memory.store(cell, encode_int(5, SIZE_T), tid=0)
        sched.spawn("inc", [VPtr(cell)])
        results = sched.run()
        assert all(r.finished for r in results.values())
        # After join, the main thread may read the cell.
        assert decode_int(sched.memory.load(cell, 8, tid=0),
                          SIZE_T).value == 6

    def test_nonatomic_concurrent_increments_race(self):
        prog = Program(functions={"inc": _increment_fn(False)})
        raced = 0
        for seed in range(8):
            sched = Scheduler(prog, seed=seed)
            cell = sched.memory.allocate(8)
            sched.memory.store(cell, encode_int(0, SIZE_T), tid=0)
            sched.spawn("inc", [VPtr(cell)])
            sched.spawn("inc", [VPtr(cell)])
            try:
                sched.run()
            except UndefinedBehavior:
                raced += 1
        assert raced == 8  # unsynchronised concurrent writes always race

    def test_cas_loop_increments_are_exact(self):
        from repro.caesium.layout import U8
        prog = Program(functions={"inc": _cas_loop_fn()})
        for seed in range(10):
            sched = Scheduler(prog, seed=seed)
            cell = sched.memory.allocate(1)
            sched.memory.store(cell, [0], tid=0)
            for _ in range(4):
                sched.spawn("inc", [VPtr(cell)])
            sched.run()   # no UB: all accesses are atomic
            assert sched.memory.load(cell, 1, tid=0) == [4]

    def test_interleavings_differ_across_seeds(self):
        """Sanity: the scheduler genuinely explores different orders."""
        prog = Program(functions={"inc": _increment_fn(True)})
        orders = set()
        for seed in range(20):
            sched = Scheduler(prog, seed=seed)
            cell = sched.memory.allocate(8)
            sched.memory.store(cell, encode_int(0, SIZE_T), tid=0)
            t1 = sched.spawn("inc", [VPtr(cell)])
            t2 = sched.spawn("inc", [VPtr(cell)])
            sched.run()
            orders.add(seed % 2 == 0)  # placeholder: run must not throw
        assert orders  # at minimum, every seed completed

    def test_run_concurrently_helper(self):
        prog = Program(functions={"inc": _increment_fn(True)})

        def setup(sched):
            cell = sched.memory.allocate(8)
            sched.memory.store(cell, encode_int(0, SIZE_T), tid=0)
            sched._test_cell = cell

        # atomic increments don't race (each is a single atomic RMW-free
        # load+store pair... the load/store are separate SC accesses, so
        # increments may be lost, but there is no UB).
        results = run_concurrently(prog, [], seeds=range(3), setup=setup)
        assert len(results) == 3

    @pytest.mark.slow
    def test_step_budget(self):
        loop = Function("spin", [], None, [], {
            "entry": Block([], Goto("entry")),
        }, "entry")
        prog = Program(functions={"spin": loop})
        sched = Scheduler(prog, seed=0, fuel=10**9)
        sched.spawn("spin", [])
        with pytest.raises(Exception):
            sched.run(max_steps=1000)
