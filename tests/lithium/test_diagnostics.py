"""Diagnostics rendering across the main failure shapes (§2.1): the
reason, the location trail and the side condition must all be visible —
and, with tracing on, each shape must produce a stuck-goal report.

Three shapes are pinned down:

1. an *unsolvable pure side condition* (a ⌜φ⌝ no solver discharges),
2. a *missing context atom* (the subsumption needs ownership Δ lacks),
3. a *rule-selection failure* (no typing rule matches the goal).
"""

import pytest

from repro.frontend import verify_source
from repro.lithium import BasicGoal, GBasic, VerificationError
from repro.trace.tracer import Tracer, using

from .test_search import make_state

OVERFLOW = '''
[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::returns("{n + 1} @ int<size_t>")]]
size_t inc(size_t x) { return x + 1; }'''

NO_OWNERSHIP = '''
[[rc::parameters("p: loc")]]
[[rc::args("p @ &own<int<size_t>>")]]
[[rc::returns("&own<int<size_t>>")]]
[[rc::ensures("own p : int<size_t>")]]
size_t* dup(size_t* p) { return p; }'''


class TestUnsolvableSideCondition:
    @pytest.fixture(scope="class")
    def outcome(self):
        return verify_source(OVERFLOW, study="inc", trace=True)

    def test_reason_and_side_condition(self, outcome):
        text = outcome.report()
        assert "Cannot prove side condition" in text
        assert 'in function "inc"' in text
        assert "cannot discharge it" in text

    def test_location(self, outcome):
        assert "return statement" in outcome.report()

    def test_stuck_report(self, outcome):
        (fr,) = outcome.result.functions.values()
        stuck = fr.error.stuck
        assert stuck is not None
        assert stuck.function == "inc"
        assert stuck.side_condition is not None
        text = stuck.render()
        assert "stuck side condition:" in text
        assert "context Γ" in text
        # the pure facts include the argument typing fact
        assert any("n" in f for f in stuck.gamma)


class TestMissingContextAtom:
    @pytest.fixture(scope="class")
    def outcome(self):
        return verify_source(NO_OWNERSHIP, study="dup", trace=True)

    def test_reason_names_missing_and_available(self, outcome):
        text = outcome.report()
        assert "no ownership available" in text
        assert "the context owns:" in text

    def test_stuck_report_has_delta_snapshot(self, outcome):
        (fr,) = outcome.result.functions.values()
        stuck = fr.error.stuck
        assert stuck is not None
        assert stuck.side_condition is None    # not a pure failure
        assert "no ownership" in stuck.reason

    def test_location(self, outcome):
        assert "return statement" in outcome.report()


class TestRuleSelectionFailure:
    def make_odd_goal(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Odd(BasicGoal):
            def dispatch_key(self):
                return ("odd",)

            def describe(self):
                return "odd judgment"

        return GBasic(Odd())

    def test_reason_names_goal(self):
        st = make_state()
        with pytest.raises(VerificationError) as exc:
            st.run(self.make_odd_goal())
        assert "no typing rule applies" in str(exc.value)
        assert "odd judgment" in str(exc.value)

    def test_stuck_report_when_traced(self):
        st = make_state()
        with using(Tracer()):
            with pytest.raises(VerificationError) as exc:
                st.run(self.make_odd_goal())
        stuck = exc.value.stuck
        assert stuck is not None
        assert "no typing rule applies" in stuck.reason
        assert stuck.function == "toy"

    def test_no_stuck_report_untraced(self):
        st = make_state()
        with pytest.raises(VerificationError) as exc:
            st.run(self.make_odd_goal())
        assert exc.value.stuck is None
