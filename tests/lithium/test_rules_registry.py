"""Rule registry tests: dispatch-key lookup, wildcards, priorities."""

from dataclasses import dataclass

import pytest

from repro.lithium.goals import BasicGoal, GTrue
from repro.lithium.rules import Rule, RuleError, RuleRegistry


@dataclass(frozen=True)
class J(BasicGoal):
    key: tuple

    def dispatch_key(self):
        return self.key


def r(name, key, priority=0):
    return Rule(name, key, lambda f, s: GTrue(), priority)


class TestLookup:
    def test_exact_match(self):
        reg = RuleRegistry()
        reg.register(r("exact", ("j", "a", "b")))
        assert reg.lookup(J(("j", "a", "b"))).name == "exact"

    def test_exact_beats_wildcard(self):
        reg = RuleRegistry()
        reg.register(r("wild", ("j", "*", "b")))
        reg.register(r("exact", ("j", "a", "b")))
        assert reg.lookup(J(("j", "a", "b"))).name == "exact"

    def test_wildcard_order_is_deterministic(self):
        # Among equal wildcard counts the candidate order is fixed:
        # generalising later positions first means ("j", "*", "b") is
        # tried before ("j", "a", "*").
        reg = RuleRegistry()
        reg.register(r("late", ("j", "a", "*")))
        reg.register(r("early", ("j", "*", "b")))
        assert reg.lookup(J(("j", "a", "b"))).name == "early"

    def test_double_wildcard(self):
        reg = RuleRegistry()
        reg.register(r("anyany", ("j", "*", "*")))
        assert reg.lookup(J(("j", "x", "y"))).name == "anyany"

    def test_prefix_fallback(self):
        reg = RuleRegistry()
        reg.register(r("generic", ("j",)))
        assert reg.lookup(J(("j", "x", "y"))).name == "generic"

    def test_no_rule(self):
        reg = RuleRegistry()
        with pytest.raises(RuleError):
            reg.lookup(J(("nothing",)))

    def test_priority_selects(self):
        reg = RuleRegistry()
        reg.register(r("low", ("j",), priority=0))
        reg.register(r("high", ("j",), priority=5))
        assert reg.lookup(J(("j",))).name == "high"

    def test_equal_priority_ambiguity_rejected(self):
        reg = RuleRegistry()
        reg.register(r("one", ("j",)))
        reg.register(r("two", ("j",)))
        with pytest.raises(RuleError):
            reg.lookup(J(("j",)))

    def test_duplicate_name_rejected(self):
        reg = RuleRegistry()
        reg.register(r("dup", ("j",)))
        with pytest.raises(RuleError):
            reg.register(r("dup", ("j",)))

    def test_len_counts_rules(self):
        reg = RuleRegistry()
        reg.register(r("a", ("x",)))
        reg.register(r("b", ("y",)))
        assert len(reg) == 2


class TestStandardLibrary:
    """Properties of the shipped RefinedC rule library."""

    def test_library_size(self):
        # The paper's standard library has ~200 rules over ~30 types; ours
        # is smaller but must stay a real library, not a handful of hacks.
        from repro.refinedc.rules import REGISTRY
        assert len(REGISTRY) >= 80

    def test_figure6_rules_present(self):
        from repro.refinedc.rules import REGISTRY
        names = {rule.name for rule in REGISTRY.all_rules()}
        for expected in ("IF-BOOL", "IF-INT", "T-BINOP", "O-ADD-UNINIT",
                         "S-OWN", "S-NULL", "CAS-BOOL"):
            assert expected in names, expected

    def test_optional_eq_rules_present(self):
        from repro.refinedc.rules import REGISTRY
        names = {rule.name for rule in REGISTRY.all_rules()}
        assert any(n.startswith("O-OPTIONAL-EQ") for n in names)

    def test_every_rule_documented(self):
        from repro.refinedc.rules import REGISTRY
        undocumented = [rule.name for rule in REGISTRY.all_rules()
                        if not (rule.doc or "").strip()
                        and not rule.name.startswith(("O-ARITH", "O-CMP",
                                                      "O-OPTIONAL",
                                                      "O-OWN", "O-NULL",
                                                      "S-TOK", "HOOK"))]
        assert not undocumented, undocumented
