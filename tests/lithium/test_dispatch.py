"""Flat dispatch-table tests (RC_COMPILE).

With the compiler on, ``RuleRegistry.lookup`` remembers resolved
dispatch keys in a per-generation flat table so the steady-state lookup
is a single dict hit.  These tests pin the properties the tentpole
relies on: the table always agrees with the interpreted wildcard
cascade (it is filled *through* the slow path, so this holds by
construction — but a refactor could break it), registering a rule
invalidates it, and the hit counter is telemetry only.
"""

from dataclasses import dataclass

import pytest

from repro.lithium.goals import BasicGoal, GTrue
from repro.lithium.rules import Rule, RuleError, RuleRegistry
from repro.pure.compiled import compile_disabled, set_compile_enabled


@pytest.fixture(autouse=True)
def _compiled():
    """These tests exercise the compiled path regardless of RC_COMPILE."""
    prev = set_compile_enabled(True)
    yield
    set_compile_enabled(prev)


@dataclass(frozen=True)
class J(BasicGoal):
    key: tuple

    def dispatch_key(self):
        return self.key


def r(name, key, priority=0):
    return Rule(name, key, lambda f, s: GTrue(), priority)


def test_table_agrees_with_interpreted_lookup():
    """Every key resolvable by the slow path resolves to the same rule
    through the table, on both the filling and the hitting lookup."""
    reg = RuleRegistry()
    reg.register(r("exact", ("j", "a", "b")))
    reg.register(r("late", ("j", "a", "*")))
    reg.register(r("early", ("j", "*", "b")))
    reg.register(r("anyany", ("j", "*", "*")))
    reg.register(r("prefix", ("j",)))
    reg.register(r("high", ("k",), priority=5))
    reg.register(r("low", ("k",), priority=0))

    keys = [("j", "a", "b"), ("j", "a", "z"), ("j", "z", "b"),
            ("j", "z", "z"), ("j",), ("j", "q", "r", "s"), ("k",),
            ("k", "x")]
    with compile_disabled():
        want = [reg.lookup(J(k)).name for k in keys]
    fill = [reg.lookup(J(k)).name for k in keys]   # fills the table
    hit = [reg.lookup(J(k)).name for k in keys]    # pure table hits
    assert fill == want
    assert hit == want


def test_dispatch_hits_count_only_table_hits():
    reg = RuleRegistry()
    reg.register(r("only", ("j",)))
    assert reg.dispatch_hits == 0
    reg.lookup(J(("j", "x")))        # miss: fills the table
    assert reg.dispatch_hits == 0
    reg.lookup(J(("j", "x")))
    reg.lookup(J(("j", "x")))
    assert reg.dispatch_hits == 2


def test_register_invalidates_table():
    """A newly registered, more specific rule must win immediately even
    though the old resolution is sitting in the table."""
    reg = RuleRegistry()
    reg.register(r("wild", ("j", "*")))
    assert reg.lookup(J(("j", "a"))).name == "wild"
    assert reg.lookup(J(("j", "a"))).name == "wild"   # now cached
    reg.register(r("exact", ("j", "a"), priority=1))
    assert reg.lookup(J(("j", "a"))).name == "exact"


def test_erroring_keys_stay_on_slow_path():
    """Unresolvable keys raise the interpreted error text every time —
    they are never cached as table entries."""
    reg = RuleRegistry()
    reg.register(r("only", ("j",)))
    for _ in range(2):
        with pytest.raises(RuleError) as e:
            reg.lookup(J(("nothing",)))
        assert "dispatch key ('nothing',)" in str(e.value)
    assert reg.dispatch_hits == 0


def test_table_off_means_no_hits():
    reg = RuleRegistry()
    reg.register(r("only", ("j",)))
    with compile_disabled():
        for _ in range(3):
            assert reg.lookup(J(("j", "x"))).name == "only"
    assert reg.dispatch_hits == 0


def test_library_dispatch_is_mode_independent():
    """Sanity over the shipped library: a handful of real dispatch keys
    resolve to the same rule with the table on and off."""
    from repro.refinedc.rules import REGISTRY

    sample = [rule.key for rule in REGISTRY.all_rules()
              if "*" not in rule.key][:20]
    assert sample
    with compile_disabled():
        want = [REGISTRY._lookup_slow(k, J(k)).name for k in sample]
    got = [REGISTRY.lookup(J(k)).name for k in sample]
    assert got == want
