"""``SearchState._solve_linear_evar``: solving a linear integer equality
for a single evar (the engine's deterministic instantiation step,
e.g. ``?n - 1 = m`` gives ``?n := m + 1``).

The solver must bind only when the solution is the *unique* integer
solution: a unit evar coefficient, the evar nowhere inside an opaque
atom, and an integral right-hand side.  Each rejection case is pinned
down here, plus the successful binding."""

from repro.lithium import RuleRegistry, SearchState
from repro.pure import PureSolver, Sort, terms as T
from repro.pure.linarith import LinExpr
from repro.pure.terms import fresh_evar


def make_state():
    return SearchState(RuleRegistry(), PureSolver(),
                       lambda have, want, cont: None, function="toy")


m = T.var("m")


def test_solves_unit_coefficient_equation():
    st = make_state()
    ev = fresh_evar(Sort.INT, "n")
    phi = T.eq(T.sub(ev, T.intlit(1)), m)
    assert st._solve_linear_evar(phi)
    assert st.subst.resolve(ev) == T.add(m, T.intlit(1))
    # The equation is now discharged under the binding.
    assert st.subst.resolve(phi) == T.eq(T.sub(T.add(m, T.intlit(1)),
                                               T.intlit(1)), m)


def test_solves_negated_evar():
    st = make_state()
    ev = fresh_evar(Sort.INT, "n")
    # -?n + m = 3  =>  ?n := m - 3
    phi = T.eq(T.add(T.neg(ev), m), T.intlit(3))
    assert st._solve_linear_evar(phi)
    assert st.subst.resolve(ev) == T.add(m, T.intlit(-3))


def test_rejects_non_unit_coefficient():
    st = make_state()
    ev = fresh_evar(Sort.INT, "n")
    # 2·?n = m has no unique integer solution for arbitrary m.
    phi = T.eq(T.mul(T.intlit(2), ev), m)
    assert not st._solve_linear_evar(phi)
    assert st.subst.resolve(ev) is ev


def test_rejects_two_evars():
    st = make_state()
    ev1 = fresh_evar(Sort.INT, "a")
    ev2 = fresh_evar(Sort.INT, "b")
    phi = T.eq(T.add(ev1, ev2), m)
    assert not st._solve_linear_evar(phi)
    assert st.subst.resolve(ev1) is ev1
    assert st.subst.resolve(ev2) is ev2


def test_rejects_evar_inside_opaque_atom():
    st = make_state()
    ev = fresh_evar(Sort.INT, "n")
    # ?n + m·?n = 0: the non-linear m·?n is an opaque atom containing the
    # evar, so ?n := -(m·?n) would be circular — must be rejected.
    phi = T.eq(T.add(ev, T.mul(m, ev)), T.intlit(0))
    assert not st._solve_linear_evar(phi)
    assert st.subst.resolve(ev) is ev


def test_rejects_non_integral_solution(monkeypatch):
    """A fractional residue can only arise from upstream rewrites; guard
    the integrality check directly by stubbing the lineariser."""
    from fractions import Fraction

    from repro.pure import linarith

    st = make_state()
    ev = fresh_evar(Sort.INT, "n")
    phi = T.eq(ev, m)

    real_linearise = linarith.linearise
    half = Fraction(1, 2)

    def fake_linearise(e, atoms, local=None):
        if e is phi.args[1]:  # give the rhs a non-integral coefficient
            return LinExpr({m: half}, Fraction(0))
        return real_linearise(e, atoms)

    monkeypatch.setattr(linarith, "linearise", fake_linearise)
    assert not st._solve_linear_evar(phi)
    assert st.subst.resolve(ev) is ev


def test_rejects_non_integral_constant(monkeypatch):
    from fractions import Fraction

    from repro.pure import linarith

    st = make_state()
    ev = fresh_evar(Sort.INT, "n")
    phi = T.eq(ev, T.intlit(1))

    real_linearise = linarith.linearise

    def fake_linearise(e, atoms, local=None):
        if e is phi.args[1]:
            return LinExpr({}, Fraction(1, 2))
        return real_linearise(e, atoms)

    monkeypatch.setattr(linarith, "linearise", fake_linearise)
    assert not st._solve_linear_evar(phi)
    assert st.subst.resolve(ev) is ev


def test_rejects_unlinearisable_equation():
    st = make_state()
    ev = fresh_evar(Sort.BOOL, "p")
    # A boolean equation has no linear form; linearise raises and the
    # solver declines without touching the substitution.
    phi = T.eq(T.and_(ev, T.TRUE), T.TRUE)
    assert not st._solve_linear_evar(phi)
    assert st.subst.resolve(ev) is ev
