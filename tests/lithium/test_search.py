"""Lithium engine tests, using a small toy judgment set independent of the
RefinedC type system (the engine is generic, §8)."""

from dataclasses import dataclass

import pytest

from repro.lithium import (Atom, BasicGoal, GBasic, GExists, GForall, GSep,
                           GTrue, GWand, HAtom, HExists, HPure, HSep, Rule,
                           RuleRegistry, SearchState, VerificationError, conj)
from repro.pure import PureSolver, Sort, Subst, terms as T


@dataclass(frozen=True)
class PointsTo(Atom):
    """Toy atom: location `loc` holds integer term `value`."""

    loc: T.Term
    value: T.Term

    @property
    def subject(self) -> T.Term:
        return self.loc

    def resolve(self, subst: Subst) -> "PointsTo":
        return PointsTo(subst.resolve(self.loc), subst.resolve(self.value))


@dataclass(frozen=True)
class SubsumePT(BasicGoal):
    have: PointsTo
    want: PointsTo
    cont: object

    def dispatch_key(self):
        return ("subsume_pt",)

    def describe(self):
        return f"{self.have!r} <: {self.want!r}"


def make_state(extra_rules=()):
    registry = RuleRegistry()

    def subsume_rule(f, state):
        # values must be equal; then continue
        return GSep(HPure(T.eq(f.have.value, f.want.value)), f.cont)

    registry.register(Rule("subsume_pt", ("subsume_pt",), subsume_rule))
    for r in extra_rules:
        registry.register(r)

    def make_subsume(have, want, cont):
        return SubsumePT(have, want, cont)

    return SearchState(registry, PureSolver(), make_subsume, function="toy")


l1 = T.var("l1", Sort.LOC)
l2 = T.var("l2", Sort.LOC)
n = T.var("n")


class TestBasicCases:
    def test_true_succeeds(self):
        make_state().run(GTrue())

    def test_conj_forks(self):
        st = make_state()
        branch = GSep(HPure(T.TRUE), GTrue())
        st.run(conj(branch, branch))
        assert st.stats.conj_forks == 1

    def test_conj_collapses_trivial_goals(self):
        # the conj() builder drops True conjuncts entirely
        st = make_state()
        st.run(conj(GTrue(), GTrue()))
        assert st.stats.conj_forks == 0

    def test_forall_introduces_fresh_var(self):
        st = make_state()
        seen = []
        st.run(GForall(Sort.INT, "k", lambda x: (seen.append(x), GTrue())[1]))
        assert len(seen) == 1 and seen[0] in st.gamma.variables

    def test_exists_introduces_sealed_evar(self):
        st = make_state()
        seen = []
        st.run(GExists(Sort.INT, "k", lambda x: (seen.append(x), GTrue())[1]))
        assert seen[0].eid in st.sealed
        assert st.stats.evars_created == 1

    def test_pure_side_condition_proved(self):
        st = make_state()
        st.run(GSep(HPure(T.le(T.intlit(1), T.intlit(2))), GTrue()))
        assert st.stats.side_conditions_auto == 1

    def test_pure_side_condition_fails(self):
        st = make_state()
        with pytest.raises(VerificationError) as exc:
            st.run(GSep(HPure(T.le(n, T.intlit(0))), GTrue()))
        assert "side condition" in str(exc.value)

    def test_wand_pure_adds_hypothesis(self):
        st = make_state()
        goal = GWand(HPure(T.le(n, T.intlit(5))),
                     GSep(HPure(T.le(n, T.intlit(10))), GTrue()))
        st.run(goal)
        assert st.stats.side_conditions_auto == 1

    def test_wand_false_hypothesis_vacuous(self):
        st = make_state()
        # an unprovable goal under a False hypothesis must succeed
        st.run(GWand(HPure(T.FALSE), GSep(HPure(T.le(n, T.intlit(0))), GTrue())))

    def test_hsep_reassociation(self):
        st = make_state()
        h = HSep(HPure(T.TRUE), HPure(T.le(T.intlit(0), T.intlit(1))))
        st.run(GSep(h, GTrue()))

    def test_hexists_in_sep_creates_evar(self):
        st = make_state()
        goal = GSep(HExists(Sort.INT, "m",
                            lambda m: HPure(T.eq(m, T.intlit(3)))), GTrue())
        st.run(goal)
        assert st.stats.evars_created == 1
        assert st.stats.evars_instantiated == 1

    def test_hexists_in_wand_universalises(self):
        st = make_state()
        goal = GWand(
            HExists(Sort.INT, "m", lambda m: HPure(T.le(T.intlit(0), m))),
            GSep(HPure(T.TRUE), GTrue()))
        st.run(goal)
        # the ∃ in a hypothesis becomes a ∀: a rigid variable, not an evar
        assert st.stats.evars_created == 0
        assert any(v.name.startswith("m$") for v in st.gamma.variables)


class TestAtoms:
    def test_intro_then_consume(self):
        st = make_state()
        atom = PointsTo(l1, n)
        goal = GWand(HAtom(atom), GSep(HAtom(PointsTo(l1, n)), GTrue()))
        st.run(goal)
        assert st.stats.atom_matches == 1
        assert len(st.delta) == 0  # resource consumed

    def test_consume_requires_matching_value(self):
        st = make_state()
        goal = GWand(HAtom(PointsTo(l1, T.intlit(1))),
                     GSep(HAtom(PointsTo(l1, T.intlit(2))), GTrue()))
        with pytest.raises(VerificationError):
            st.run(goal)

    def test_missing_resource(self):
        st = make_state()
        with pytest.raises(VerificationError) as exc:
            st.run(GSep(HAtom(PointsTo(l1, n)), GTrue()))
        assert "no ownership" in str(exc.value)

    def test_unrelated_subject_not_matched(self):
        st = make_state()
        goal = GWand(HAtom(PointsTo(l2, n)),
                     GSep(HAtom(PointsTo(l1, n)), GTrue()))
        with pytest.raises(VerificationError):
            st.run(goal)

    def test_duplicate_subject_rejected(self):
        st = make_state()
        goal = GWand(HAtom(PointsTo(l1, n)),
                     GWand(HAtom(PointsTo(l1, T.intlit(0))), GTrue()))
        with pytest.raises(VerificationError):
            st.run(goal)

    def test_conj_branches_have_separate_resources(self):
        st = make_state()
        # both branches may consume the same atom: contexts are forked
        consume = GSep(HAtom(PointsTo(l1, n)), GTrue())
        goal = GWand(HAtom(PointsTo(l1, n)), conj(consume, consume))
        st.run(goal)
        assert st.stats.atom_matches == 2

    def test_evar_value_instantiated_by_subsumption(self):
        st = make_state()
        goal = GWand(
            HAtom(PointsTo(l1, T.intlit(7))),
            GExists(Sort.INT, "v", lambda v:
                    GSep(HAtom(PointsTo(l1, v)), GTrue())))
        st.run(goal)
        # ?v must have been unified with 7 by the equality side condition
        assert st.stats.evars_instantiated == 1


class TestRuleDispatch:
    def test_no_rule_error(self):
        @dataclass(frozen=True)
        class Odd(BasicGoal):
            def dispatch_key(self):
                return ("odd",)

        st = make_state()
        with pytest.raises(VerificationError) as exc:
            st.run(GBasic(Odd()))
        assert "no typing rule" in str(exc.value)

    def test_priority_breaks_ties(self):
        @dataclass(frozen=True)
        class J(BasicGoal):
            def dispatch_key(self):
                return ("j",)

        applied = []
        r_low = Rule("low", ("j",), lambda f, s: (applied.append("low"), GTrue())[1], priority=0)
        r_high = Rule("high", ("j",), lambda f, s: (applied.append("high"), GTrue())[1], priority=10)
        st = make_state(extra_rules=[r_low, r_high])
        st.run(GBasic(J()))
        assert applied == ["high"]

    def test_ambiguous_rules_rejected(self):
        @dataclass(frozen=True)
        class J(BasicGoal):
            def dispatch_key(self):
                return ("j2",)

        r1 = Rule("r1", ("j2",), lambda f, s: GTrue())
        r2 = Rule("r2", ("j2",), lambda f, s: GTrue())
        st = make_state(extra_rules=[r1, r2])
        with pytest.raises(VerificationError) as exc:
            st.run(GBasic(J()))
        assert "ambiguous" in str(exc.value)

    def test_prefix_key_fallback(self):
        @dataclass(frozen=True)
        class J(BasicGoal):
            def dispatch_key(self):
                return ("j3", "int", "bool")

        st = make_state(extra_rules=[Rule("generic", ("j3",),
                                          lambda f, s: GTrue())])
        st.run(GBasic(J()))
        assert "generic" in st.stats.rules_used

    def test_stats_track_rules(self):
        st = make_state()
        goal = GWand(HAtom(PointsTo(l1, n)),
                     GSep(HAtom(PointsTo(l1, n)), GTrue()))
        st.run(goal)
        assert st.stats.rule_applications == 1
        assert st.stats.rules_used == {"subsume_pt"}


class TestEvarHandling:
    def test_equality_unification(self):
        st = make_state()
        goal = GExists(Sort.INT, "v", lambda v:
                       GSep(HPure(T.eq(v, T.add(n, T.intlit(1)))), GTrue()))
        st.run(goal)
        assert st.stats.evars_instantiated == 1

    def test_sealed_evar_not_instantiated_by_plain_goal(self):
        st = make_state()
        # a non-equality side condition with an uninstantiable evar fails
        goal = GExists(Sort.INT, "v", lambda v:
                       GSep(HPure(T.le(v, T.intlit(3))), GTrue()))
        with pytest.raises(VerificationError) as exc:
            st.run(goal)
        assert "evars" in str(exc.value)

    def test_nonempty_list_simplification_rule(self):
        # the paper's example: ?xs ≠ [] instantiates ?xs := ?y :: ?ys
        st = make_state()
        goal = GExists(Sort.LIST, "xs", lambda xs:
                       GSep(HPure(T.ne(xs, T.nil())), GTrue()))
        st.run(goal)
        resolved = [t for t in st.subst.snapshot().values()]
        assert any(isinstance(t, T.App) and t.op == "cons" for t in resolved)

    def test_nonempty_mset_simplification_rule(self):
        st = make_state()
        goal = GExists(Sort.MSET, "s", lambda s:
                       GSep(HPure(T.ne(s, T.mempty())), GTrue()))
        st.run(goal)

    def test_left_to_right_ordering(self):
        """Evars determined by an earlier condition are available to a
        later one (the paper's args-before-requires discipline)."""
        st = make_state()
        goal = GExists(Sort.INT, "v", lambda v:
                       GSep(HPure(T.eq(v, T.intlit(4))),
                            GSep(HPure(T.le(v, T.intlit(10))), GTrue())))
        st.run(goal)
        assert st.stats.side_conditions_auto == 2

    def test_wrong_order_defers(self):
        """If the constraining equality comes second, the earlier condition
        is *deferred* (no backtracking!) and re-checked once the evar has
        been determined."""
        st = make_state()
        goal = GExists(Sort.INT, "v", lambda v:
                       GSep(HPure(T.le(v, T.intlit(10))),
                            GSep(HPure(T.eq(v, T.intlit(4))), GTrue())))
        root = st.run(goal)
        assert root.count("side_condition_deferred") == 1

    def test_never_determined_evar_fails(self):
        """An evar no condition ever determines is reported at the end."""
        st = make_state()
        goal = GExists(Sort.INT, "v", lambda v:
                       GSep(HPure(T.le(v, T.intlit(10))), GTrue()))
        with pytest.raises(VerificationError) as exc:
            st.run(goal)
        assert "never" in str(exc.value)

    def test_deferred_condition_still_checked(self):
        """A deferred condition that turns out false still fails."""
        st = make_state()
        goal = GExists(Sort.INT, "v", lambda v:
                       GSep(HPure(T.le(v, T.intlit(1))),
                            GSep(HPure(T.eq(v, T.intlit(4))), GTrue())))
        with pytest.raises(VerificationError):
            st.run(goal)

    def test_linear_evar_isolation(self):
        """``?n - 1 = 6`` binds ``?n := 7`` (sound unique solution)."""
        st = make_state()
        goal = GExists(Sort.INT, "v", lambda v:
                       GSep(HPure(T.eq(T.sub(v, T.intlit(1)), T.intlit(6))),
                            GSep(HPure(T.eq(v, T.intlit(7))), GTrue())))
        st.run(goal)


class TestDerivation:
    def test_derivation_records_rule_applications(self):
        st = make_state()
        goal = GWand(HAtom(PointsTo(l1, n)),
                     GSep(HAtom(PointsTo(l1, n)), GTrue()))
        root = st.run(goal)
        assert root.count("rule") == 1
        assert root.count("atom_match") == 1
        assert root.count("side_condition") == 1

    def test_error_mentions_function(self):
        st = make_state()
        with pytest.raises(VerificationError) as exc:
            st.run(GSep(HPure(T.le(n, T.intlit(0))), GTrue()))
        assert 'in function "toy"' in str(exc.value)

    def test_location_stack_in_error(self):
        st = make_state()
        st.push_location("if branch: else")
        st.push_location("return statement")
        with pytest.raises(VerificationError) as exc:
            st.run(GSep(HPure(T.le(n, T.intlit(0))), GTrue()))
        msg = str(exc.value)
        assert "return statement" in msg and "if branch: else" in msg
