"""Load repo scripts as modules so their main(argv) is unit-testable."""

import importlib.util
from pathlib import Path

import pytest

SCRIPTS_DIR = Path(__file__).resolve().parents[2] / "scripts"


def load_script(name):
    spec = importlib.util.spec_from_file_location(
        f"script_{name}", SCRIPTS_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def ci_checks():
    return load_script("ci_checks")


@pytest.fixture(scope="module")
def verify_cli():
    return load_script("verify")
