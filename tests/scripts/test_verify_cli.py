"""scripts/verify.py: deleted files must not crash --changed-since."""

import json


class TestDeletedFiles:
    def test_changed_since_skips_deleted_file(self, verify_cli,
                                              tmp_path, capsys):
        out_json = tmp_path / "telemetry.json"
        rc = verify_cli.main([
            "definitely_not_a_study", "--changed-since", "HEAD",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(out_json)])
        assert rc == 0
        assert "deleted, nothing to verify" in capsys.readouterr().out
        data = json.loads(out_json.read_text())
        entry = data["files"]["definitely_not_a_study"]
        assert entry["status"] == "skipped-deleted"
        assert entry["functions"] == 0
        assert data["totals"]["skipped_files"] == 1
        assert data["ok"] is True

    def test_changed_since_still_verifies_the_living(self, verify_cli,
                                                     tmp_path):
        out_json = tmp_path / "telemetry.json"
        rc = verify_cli.main([
            "queue", "gone_with_the_branch",
            "--changed-since", "HEAD",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(out_json)])
        assert rc == 0
        data = json.loads(out_json.read_text())
        assert data["files"]["gone_with_the_branch"]["status"] == \
            "skipped-deleted"
        queue = data["files"]["queue"]
        assert queue["status"] == "verified"
        assert queue["ok"] is True
        assert queue["functions"] > 0

    def test_explicit_missing_file_fails_cleanly(self, verify_cli,
                                                 capsys):
        rc = verify_cli.main(["definitely_not_a_study"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_full_mode_also_fails_cleanly(self, verify_cli, tmp_path,
                                          capsys):
        rc = verify_cli.main([
            str(tmp_path / "nope.c"), "--full"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err
