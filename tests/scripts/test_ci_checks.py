"""ci_checks subcommands: the assertions CI enforces, now testable."""

import json

import pytest


def write(path, payload):
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return str(path)


# ---------------------------------------------------------------------
# bench-artifact
# ---------------------------------------------------------------------

def bench_payload(fingerprint=True, verified=True, ratio=1.4):
    return {"checks": {"fingerprint_identical": fingerprint,
                       "all_verified": verified},
            "speedup": {"compiled_check_wall": ratio}}


class TestBenchArtifact:
    def test_good_artifact_passes(self, ci_checks, tmp_path, capsys):
        p = write(tmp_path / "b.json", bench_payload())
        assert ci_checks.main(["bench-artifact", p]) == 0
        assert "fingerprint ok" in capsys.readouterr().out

    @pytest.mark.parametrize("payload", [
        bench_payload(fingerprint=False),
        bench_payload(verified=False),
        bench_payload(ratio=0.5),
    ])
    def test_bad_artifact_fails(self, ci_checks, tmp_path, payload):
        p = write(tmp_path / "b.json", payload)
        assert ci_checks.main(["bench-artifact", p]) == 1

    def test_speedup_floor_is_tunable(self, ci_checks, tmp_path):
        p = write(tmp_path / "b.json", bench_payload(ratio=1.1))
        assert ci_checks.main(
            ["bench-artifact", p, "--min-speedup", "1.3"]) == 1


# ---------------------------------------------------------------------
# traced-verify
# ---------------------------------------------------------------------

class TestTracedVerify:
    def test_traced_run_passes_under_rc_trace(self, ci_checks,
                                              monkeypatch):
        monkeypatch.setenv("RC_TRACE", "1")
        assert ci_checks.main(["traced-verify", "--stem", "queue"]) == 0

    def test_untraced_run_fails(self, ci_checks, monkeypatch, capsys):
        monkeypatch.delenv("RC_TRACE", raising=False)
        assert ci_checks.main(["traced-verify", "--stem", "queue"]) == 1
        assert "no trace" in capsys.readouterr().err


# ---------------------------------------------------------------------
# coverage-diff
# ---------------------------------------------------------------------

class TestCoverageDiff:
    def make(self, tmp_path, got, pinned):
        stats = write(tmp_path / "stats.json",
                      {"coverage": {"keys": sorted(got)}})
        base = write(tmp_path / "base.json", {"keys": sorted(pinned)})
        return stats, base

    def test_diff_renders_missing_and_new(self, ci_checks, tmp_path,
                                          capsys):
        stats, base = self.make(tmp_path, {"a", "c"}, {"a", "b"})
        assert ci_checks.main(["coverage-diff", stats, base]) == 0
        out = capsys.readouterr().out
        assert "campaign keys: 2 (baseline pins 2)" in out
        assert "**missing**: `b`" in out
        assert "new (unpinned): `c`" in out

    def test_strict_fails_on_missing_pinned_key(self, ci_checks,
                                                tmp_path):
        stats, base = self.make(tmp_path, {"a"}, {"a", "b"})
        assert ci_checks.main(
            ["coverage-diff", stats, base, "--strict"]) == 1

    def test_strict_passes_when_all_pinned_covered(self, ci_checks,
                                                   tmp_path):
        stats, base = self.make(tmp_path, {"a", "b", "c"}, {"a", "b"})
        assert ci_checks.main(
            ["coverage-diff", stats, base, "--strict"]) == 0


# ---------------------------------------------------------------------
# batch-reference + serve-compare
# ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def batch_json(ci_checks, tmp_path_factory):
    p = tmp_path_factory.mktemp("serve-compare") / "batch.json"
    assert ci_checks.main(
        ["batch-reference", "queue", "--json", str(p)]) == 0
    return p


def serve_payload(batch, *, warm, rechecked, ok=True):
    return {"files": json.loads(batch.read_text())["files"],
            "summary": {"ok": ok, "warm": warm, "rechecked": rechecked,
                        "queue_wait_s": 0.0}}


class TestServeCompare:
    def test_batch_reference_shape(self, batch_json):
        data = json.loads(batch_json.read_text())
        assert data["ok"] is True
        assert set(data["files"]) == {"queue"}
        fn = next(iter(data["files"]["queue"].values()))
        assert set(fn) == {"ok", "error", "counters"}

    def test_identical_outcomes_pass(self, ci_checks, batch_json,
                                     tmp_path, capsys):
        cold = write(tmp_path / "cold.json",
                     serve_payload(batch_json, warm=False, rechecked=3))
        warm = write(tmp_path / "warm.json",
                     serve_payload(batch_json, warm=True, rechecked=0))
        assert ci_checks.main(
            ["serve-compare", str(batch_json), cold, warm]) == 0
        assert "identical to batch" in capsys.readouterr().out

    def test_divergent_cold_outcome_fails(self, ci_checks, batch_json,
                                          tmp_path, capsys):
        payload = serve_payload(batch_json, warm=False, rechecked=3)
        fn = next(iter(payload["files"]["queue"]))
        payload["files"]["queue"][fn]["ok"] = False
        cold = write(tmp_path / "cold.json", payload)
        warm = write(tmp_path / "warm.json",
                     serve_payload(batch_json, warm=True, rechecked=0))
        assert ci_checks.main(
            ["serve-compare", str(batch_json), cold, warm]) == 1
        assert "differ from the batch" in capsys.readouterr().err

    def test_lukewarm_second_request_fails(self, ci_checks, batch_json,
                                           tmp_path, capsys):
        cold = write(tmp_path / "cold.json",
                     serve_payload(batch_json, warm=False, rechecked=3))
        warm = write(tmp_path / "warm.json",
                     serve_payload(batch_json, warm=False, rechecked=2))
        assert ci_checks.main(
            ["serve-compare", str(batch_json), cold, warm]) == 1
        err = capsys.readouterr().err
        assert "not served warm" in err
        assert "re-checked 2" in err
