"""Core tracing engine: sequence ids, span balancing, bounded buffers,
the current-tracer plumbing, and deterministic merging."""

import pickle

import pytest

from repro.trace.tracer import (FunctionTrace, TraceEvent, Tracer, UnitTrace,
                                current_tracer, merge_function_traces,
                                set_current, trace_env_enabled, using)


class TestTracer:
    def test_sequence_ids_are_dense_preorder(self):
        tr = Tracer()
        tr.begin("a", "outer")
        tr.instant("b", "tick")
        tr.begin("a", "inner")
        tr.end()
        tr.end()
        assert [ev.seq for ev in tr.events] == [0, 1, 2]
        assert [ev.depth for ev in tr.events] == [0, 1, 1]

    def test_end_fills_duration_and_merges_args(self):
        tr = Tracer()
        tr.begin("solver", "prove", goal="G")
        tr.end(outcome="proved")
        (ev,) = tr.events
        assert ev.dur is not None and ev.dur >= 0
        assert ev.args == {"goal": "G", "outcome": "proved"}

    def test_span_context_manager_balances(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("a", "s"):
                raise RuntimeError
        assert tr.depth == 0
        assert tr.events[0].dur is not None

    def test_limit_drops_but_keeps_seq_alignment(self):
        tr = Tracer(limit=2)
        tr.instant("a", "one")
        tr.instant("a", "two")
        tr.instant("a", "dropped")
        tr.begin("a", "dropped-span")
        tr.end()
        tr.instant("a", "also-dropped")
        assert len(tr.events) == 2
        assert tr.dropped == 3
        # The next recorded event in an unlimited run would be seq 5.
        assert tr._seq == 5
        assert tr.depth == 0          # dropped begin still balanced by end

    def test_close_ends_unwound_spans(self):
        tr = Tracer()
        tr.begin("a", "outer")
        tr.begin("a", "inner")
        tr.close()
        assert tr.depth == 0
        assert all(ev.dur is not None for ev in tr.events)
        assert all(ev.args.get("unwound") for ev in tr.events)

    def test_tail(self):
        tr = Tracer()
        for i in range(5):
            tr.instant("a", f"e{i}")
        assert [ev.name for ev in tr.tail(2)] == ["e3", "e4"]
        assert tr.tail(0) == []


class TestEventKey:
    def test_key_strips_timestamps(self):
        a = TraceEvent(3, "X", "rule", "T-IF", 2, ts=1.0, dur=0.5,
                       args={"goal": "IfJ"})
        b = TraceEvent(3, "X", "rule", "T-IF", 2, ts=9.9, dur=7.7,
                       args={"goal": "IfJ"})
        assert a.key() == b.key()

    def test_key_sees_everything_else(self):
        a = TraceEvent(3, "X", "rule", "T-IF", 2, ts=0.0)
        assert a.key() != TraceEvent(4, "X", "rule", "T-IF", 2, ts=0.0).key()
        assert a.key() != TraceEvent(3, "i", "rule", "T-IF", 2, ts=0.0).key()
        assert a.key() != TraceEvent(3, "X", "rule", "T-IF", 3, ts=0.0).key()
        assert a.key() != TraceEvent(3, "X", "rule", "T-IF", 2, ts=0.0,
                                     args={"x": 1}).key()

    def test_events_pickle(self):
        ev = TraceEvent(1, "i", "memo", "hit", 4, ts=0.25,
                        args={"cache": "prove"})
        back = pickle.loads(pickle.dumps(ev))
        assert back.key() == ev.key()
        assert back.ts == ev.ts


class TestCurrentTracer:
    def test_set_and_restore(self):
        assert current_tracer() is None
        tr = Tracer()
        prev = set_current(tr)
        try:
            assert prev is None
            assert current_tracer() is tr
        finally:
            set_current(prev)
        assert current_tracer() is None

    def test_using_closes_and_restores(self):
        with using(Tracer()) as tr:
            tr.begin("a", "open")
            assert current_tracer() is tr
        assert current_tracer() is None
        assert tr.depth == 0          # closed on exit

    def test_env_switch(self, monkeypatch):
        for raw, expect in [("1", True), ("on", True), ("yes", True),
                            ("0", False), ("false", False), ("off", False),
                            ("no", False), ("", False)]:
            monkeypatch.setenv("RC_TRACE", raw)
            assert trace_env_enabled() is expect, raw
        monkeypatch.delenv("RC_TRACE")
        assert trace_env_enabled() is False


class TestMerge:
    def _buf(self, unit, fn, names):
        events = [TraceEvent(i, "i", "t", n, 0, ts=float(i))
                  for i, n in enumerate(names)]
        return FunctionTrace(unit=unit, function=fn, events=events)

    def test_spec_order_wins_over_completion_order(self):
        front = self._buf("u", "", ["parse"])
        by_fn = {"g": self._buf("u", "g", ["gg"]),
                 "f": self._buf("u", "f", ["ff"])}
        merged = merge_function_traces("u", front, by_fn, iter(["f", "g"]))
        assert [b.function for b in merged.buffers] == ["", "f", "g"]

    def test_missing_buffers_skipped(self):
        merged = merge_function_traces(
            "u", None, {"f": self._buf("u", "f", ["x"])},
            iter(["f", "cached_fn"]))
        assert [b.function for b in merged.buffers] == ["f"]

    def test_deterministic_keys_cover_all_buffers(self):
        front = self._buf("u", "", ["parse"])
        merged = merge_function_traces(
            "u", front, {"f": self._buf("u", "f", ["x", "y"])}, iter(["f"]))
        keys = merged.deterministic_keys()
        assert len(keys) == merged.event_count() == 3
        assert keys[0][:2] == ("u", "")
        assert keys[1][:2] == ("u", "f")

    def test_unit_trace_counts(self):
        buf = self._buf("u", "f", ["x"])
        buf.dropped = 7
        trace = UnitTrace("u", [buf])
        assert trace.event_count() == 1
        assert trace.dropped_count() == 7
