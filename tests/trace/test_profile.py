"""Self-profile construction: self-time attribution, rule aggregation,
slowest-goal ranking and the metrics trace-summary block."""

from repro.trace.profile import build_profile, render_profile, trace_summary
from repro.trace.tracer import FunctionTrace, TraceEvent, UnitTrace


def span(seq, cat, name, depth, ts, dur, **args):
    return TraceEvent(seq, "X", cat, name, depth, ts=ts, dur=dur, args=args)


def instant(seq, cat, name, depth, ts, **args):
    return TraceEvent(seq, "i", cat, name, depth, ts=ts, args=args)


def synthetic_trace():
    """check(10s) > rule A(6s) > solver.prove(4s); plus a sibling rule B
    and two memo instants.  Durations are picked so the expected self
    times are exact."""
    events = [
        span(0, "check", "f", 0, ts=0.0, dur=10.0),
        span(1, "rule", "A", 1, ts=0.5, dur=6.0, goal="J"),
        span(2, "solver", "prove", 2, ts=1.0, dur=4.0,
             goal="le(0, n)", outcome="proved", solver="default"),
        instant(3, "memo", "miss", 3, ts=1.5, cache="prove"),
        span(4, "rule", "B", 1, ts=7.0, dur=2.0, goal="J"),
        span(5, "solver", "prove", 2, ts=7.5, dur=1.0,
             goal="False", outcome="failed", solver="default"),
        instant(6, "memo", "hit", 3, ts=7.6, cache="prove"),
    ]
    return UnitTrace("u", [FunctionTrace("u", "f", events)])


class TestBuildProfile:
    def test_self_time_excludes_direct_children(self):
        prof = build_profile(synthetic_trace())
        check = prof.spans[("check", "f")]
        assert check.total_s == 10.0
        assert check.self_s == 10.0 - 6.0 - 2.0
        rule_a = prof.spans[("rule", "A")]
        assert rule_a.total_s == 6.0
        assert rule_a.self_s == 6.0 - 4.0

    def test_rules_aggregate_by_name(self):
        rules = build_profile(synthetic_trace()).rules()
        assert set(rules) == {"A", "B"}
        assert rules["A"].count == 1

    def test_instants_counted(self):
        prof = build_profile(synthetic_trace())
        assert prof.instants[("memo", "miss")] == 1
        assert prof.instants[("memo", "hit")] == 1

    def test_slowest_prove_ranked_and_labelled(self):
        prof = build_profile(synthetic_trace())
        assert [c.dur_s for c in prof.slowest_prove] == [4.0, 1.0]
        top = prof.slowest_prove[0]
        assert top.function == "f"
        assert top.goal == "le(0, n)"
        assert top.outcome == "proved"

    def test_top_n_caps_slow_list(self):
        prof = build_profile(synthetic_trace(), top_n=1)
        assert len(prof.slowest_prove) == 1

    def test_unclosed_span_counts_as_zero_duration(self):
        events = [span(0, "check", "f", 0, ts=0.0, dur=None)]
        prof = build_profile(UnitTrace("u", [FunctionTrace("u", "f",
                                                           events)]))
        assert prof.spans[("check", "f")].total_s == 0.0


class TestRenderProfile:
    def test_contains_tables_and_slow_goals(self):
        text = render_profile(build_profile(synthetic_trace()))
        assert "trace profile: 7 event(s)" in text
        assert "rule" in text and "A" in text and "B" in text
        assert "memo.miss" in text
        assert "slowest solver goals" in text
        assert "le(0, n)" in text

    def test_mentions_drops(self):
        trace = synthetic_trace()
        trace.buffers[0].dropped = 9
        assert "9 dropped" in render_profile(build_profile(trace))


class TestTraceSummary:
    def test_block_shape(self):
        block = trace_summary(synthetic_trace())
        assert block["events"] == 7
        assert block["dropped"] == 0
        assert block["rules"]["A"] == {"count": 1, "total_s": 6.0,
                                       "self_s": 2.0}
        assert block["solver"]["prove_calls"] == 2
        assert block["solver"]["prove_total_s"] == 5.0
        assert block["solver"]["memo_hits"] == 1
        assert block["solver"]["memo_misses"] == 1
        assert [c["dur_s"] for c in block["slowest_prove"]] == [4.0, 1.0]

    def test_json_compatible(self):
        import json
        json.dumps(trace_summary(synthetic_trace()))
