"""Chrome trace-event export and its schema validator, plus the JSONL
stream."""

import json

from repro.trace.chrome import (chrome_trace, to_jsonl, validate_chrome_trace,
                                write_chrome_trace, write_jsonl)
from repro.trace.tracer import FunctionTrace, Tracer, UnitTrace


def sample_trace():
    front = Tracer()
    front.begin("frontend", "parse")
    front.end()
    fn = Tracer()
    fn.begin("check", "f")
    fn.begin("rule", "T-IF", goal="IfJ")
    fn.instant("memo", "hit", cache="prove")
    fn.end()
    fn.end()
    return UnitTrace("unit", [
        FunctionTrace("unit", "", front.events),
        FunctionTrace("unit", "f", fn.events),
    ])


class TestChromeExport:
    def test_valid_against_schema(self):
        data = chrome_trace(sample_trace())
        assert validate_chrome_trace(data) == []

    def test_one_thread_per_buffer_with_names(self):
        data = chrome_trace(sample_trace())
        meta = [ev for ev in data["traceEvents"] if ev["ph"] == "M"]
        assert [m["tid"] for m in meta] == [1, 2]
        assert meta[0]["args"]["name"] == "unit (front end)"
        assert meta[1]["args"]["name"] == "f"

    def test_spans_and_instants(self):
        data = chrome_trace(sample_trace())
        spans = [ev for ev in data["traceEvents"] if ev["ph"] == "X"]
        instants = [ev for ev in data["traceEvents"] if ev["ph"] == "i"]
        assert {s["name"] for s in spans} == {"parse", "f", "T-IF"}
        assert all("dur" in s for s in spans)
        (hit,) = instants
        assert hit["s"] == "t"
        assert hit["args"]["cache"] == "prove"

    def test_args_carry_seq(self):
        data = chrome_trace(sample_trace())
        spans = [ev for ev in data["traceEvents"] if ev["ph"] != "M"]
        assert all("seq" in ev["args"] for ev in spans)

    def test_other_data(self):
        trace = sample_trace()
        trace.buffers[1].dropped = 3
        data = chrome_trace(trace)
        assert data["otherData"]["unit"] == "unit"
        assert data["otherData"]["dropped_events"] == 3

    def test_write_round_trip(self, tmp_path):
        path = write_chrome_trace(sample_trace(), tmp_path / "t.json")
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_rejects_missing_required_key(self):
        data = chrome_trace(sample_trace())
        del data["traceEvents"][1]["ts"]
        assert any("missing 'ts'" in p for p in validate_chrome_trace(data))

    def test_rejects_bad_phase(self):
        data = chrome_trace(sample_trace())
        data["traceEvents"][1]["ph"] = "Z"
        assert any("unknown phase" in p
                   for p in validate_chrome_trace(data))

    def test_rejects_negative_duration(self):
        data = chrome_trace(sample_trace())
        spans = [ev for ev in data["traceEvents"] if ev["ph"] == "X"]
        spans[0]["dur"] = -1.0
        assert any("negative dur" in p for p in validate_chrome_trace(data))

    def test_rejects_escaping_span(self):
        data = chrome_trace(sample_trace())
        spans = [ev for ev in data["traceEvents"]
                 if ev["ph"] == "X" and ev["tid"] == 2]
        outer, inner = spans[0], spans[1]
        inner["dur"] = outer["dur"] + 1000.0   # child outlives parent
        assert any("escapes" in p for p in validate_chrome_trace(data))


class TestJsonl:
    def test_one_line_per_event_with_scope(self):
        trace = sample_trace()
        lines = to_jsonl(trace).splitlines()
        assert len(lines) == trace.event_count()
        first = json.loads(lines[0])
        assert first["unit"] == "unit"
        assert first["function"] == ""
        assert first["name"] == "parse"
        last = json.loads(lines[-1])
        assert last["function"] == "f"
        assert {"seq", "depth", "ph", "cat", "ts"} <= set(last)

    def test_write(self, tmp_path):
        path = write_jsonl(sample_trace(), tmp_path / "t.jsonl")
        assert len(path.read_text().splitlines()) == 4

    def test_empty_trace(self):
        assert to_jsonl(UnitTrace("u", [])) == ""
