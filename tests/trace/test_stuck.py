"""Stuck-goal reports: construction from a live tracer, rendering, stack
elision, and pickling (the report must survive the process pool)."""

import pickle

from repro.trace.stuck import (DEFAULT_STACK, StuckGoalReport,
                               build_stuck_report, format_event_line)
from repro.trace.tracer import TraceEvent, Tracer


def failing_tracer(depth=3):
    tr = Tracer()
    tr.begin("check", "f")
    for i in range(depth):
        tr.begin("rule", f"R{i}", judgment=f"j{i}")
    tr.instant("search", "fail", reason="nope")
    return tr


class TestFormatEventLine:
    def test_no_timestamps(self):
        ev = TraceEvent(7, "X", "rule", "T-IF", 2, ts=123.456, dur=9.0,
                        args={"goal": "IfJ"})
        line = format_event_line(ev)
        assert "123" not in line and "9.0" not in line
        assert line.startswith("#7")
        assert "rule.T-IF" in line and "goal='IfJ'" in line

    def test_relative_capped_indent(self):
        deep = TraceEvent(0, "i", "a", "x", 80, ts=0.0)
        line = format_event_line(deep, base_depth=78)
        assert line.count(". ") == 2
        capped = format_event_line(deep, base_depth=0)
        assert capped.count(". ") <= 12


class TestBuildStuckReport:
    def test_captures_tail_and_stack(self):
        tr = failing_tracer()
        rep = build_stuck_report(
            tr, function="f", reason="cannot", location=["line 1", "line 2"],
            side_condition="False", gamma=["le(0, n)"], delta=["l ◁ₗ int"])
        assert rep.function == "f"
        assert rep.tail                      # event lines recorded
        assert rep.open_spans[0] == "check.f"
        assert rep.open_spans[-1].startswith("rule.R2")

    def test_stack_elision(self):
        tr = failing_tracer(depth=DEFAULT_STACK + 10)
        rep = build_stuck_report(
            tr, function="f", reason="r", location=[], side_condition=None,
            gamma=[], delta=[])
        assert len(rep.open_spans) == DEFAULT_STACK + 1   # + elision marker
        assert rep.open_spans[0] == "check.f"
        assert "omitted" in rep.open_spans[1]
        assert rep.open_spans[-1].startswith(
            f"rule.R{DEFAULT_STACK + 10 - 1}")

    def test_without_tracer(self):
        rep = build_stuck_report(
            None, function="f", reason="r", location=["loc"],
            side_condition="phi", gamma=[], delta=[])
        assert rep.tail == [] and rep.open_spans == []


class TestRender:
    def make(self):
        return StuckGoalReport(
            function="f", reason="solver gave up",
            location=["if condition (line 1)", "return statement (line 2)"],
            side_condition="lt(n, a)", gamma=["le(0, n)"],
            delta=["l ◁ₗ int<size_t>"], tail=["#0 - search.step"],
            open_spans=["check.f"])

    def test_sections(self):
        text = self.make().render()
        assert text.startswith("--- stuck goal ")
        assert "function: f" in text
        assert "at: return statement (line 2)" in text
        assert "from: if condition (line 1)" in text
        assert "stuck side condition: lt(n, a)" in text
        assert "reason: solver gave up" in text
        assert "context Γ (1 fact(s)):" in text
        assert "context Δ (1 resource(s)):" in text
        assert "last 1 trace event(s):" in text

    def test_optional_sections_omitted(self):
        rep = StuckGoalReport(function="f", reason="r")
        text = rep.render()
        assert "stuck side condition" not in text
        assert "goal stack" not in text
        assert "trace event" not in text

    def test_pickles(self):
        rep = self.make()
        assert pickle.loads(pickle.dumps(rep)).render() == rep.render()
