"""The §2.1 error-message experiment: precise diagnostics on failure."""

import pytest

from repro.frontend import verify_source
from repro.report import casestudies_dir

ALLOC = (casestudies_dir() / "alloc.c").read_text()


class TestAllocErrorMessage:
    """Mutating alloc's spec from n ≤ a to n < a (the paper's example)."""

    @pytest.fixture(scope="class")
    def outcome(self):
        bad = ALLOC.replace("{n <= a} @ optional", "{n < a} @ optional")
        assert bad != ALLOC
        return verify_source(bad)

    def test_fails(self, outcome):
        assert not outcome.ok

    def test_reports_side_condition(self, outcome):
        msg = outcome.report()
        assert "Cannot prove side condition" in msg
        assert "lt(n, a)" in msg

    def test_reports_function(self, outcome):
        assert 'in function "alloc"' in outcome.report()

    def test_reports_return_location(self, outcome):
        assert "return statement" in outcome.report()

    def test_reports_branch_trail(self, outcome):
        # "up to: ... [if branch: else]" — the paper's trail format.
        msg = outcome.report()
        assert "up to:" in msg
        assert "if branch: else" in msg


class TestOtherDiagnostics:
    def test_null_dereference_message(self):
        out = verify_source('''
        [[rc::returns("int<size_t>")]]
        size_t bad(void) {
          size_t* p = NULL;
          return *p;
        }''')
        assert "NULL" in out.report()

    def test_missing_ownership_message(self):
        out = verify_source('''
        [[rc::parameters("p: loc")]]
        [[rc::args("p @ &own<int<size_t>>")]]
        [[rc::returns("&own<int<size_t>>")]]
        [[rc::ensures("own p : int<size_t>")]]
        size_t* dup(size_t* p) { return p; }''')
        assert "no ownership" in out.report()

    def test_loop_without_invariant_message(self):
        # A loop whose head lacks annotations but needs them — the loop
        # body changes a type the invariant must capture.  The empty
        # invariant makes the frame check fail with a helpful message
        # rather than diverging.
        out = verify_source('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("int<size_t>")]]
        size_t f(size_t n) {
          size_t i = 0;
          while (i < n) { i += 1; }
          return i;
        }''')
        assert not out.ok

    def test_uninstantiable_evar_message(self):
        out = verify_source('''
        [[rc::exists("m: nat")]]
        [[rc::returns("{m} @ int<size_t>")]]
        [[rc::ensures("{m > 5}")]]
        size_t f(void) { return 3; }''')
        # m := 3 by the return, then 3 > 5 fails.
        assert not out.ok
        assert "side condition" in out.report()
