"""The reporting layer (Figure 7 column computation)."""

import pytest

from repro.report import (FIGURE7_STUDIES, casestudies_dir, format_table,
                          study_report)


@pytest.fixture(scope="module")
def alloc_row():
    return study_report(casestudies_dir() / "alloc.c")


class TestStudyReport:
    def test_verified_flag(self, alloc_row):
        assert alloc_row.verified

    def test_impl_lines_positive(self, alloc_row):
        assert 5 <= alloc_row.impl_lines <= 15

    def test_spec_lines_counted(self, alloc_row):
        # alloc has parameters/args/returns/ensures = 4 spec annotations.
        assert alloc_row.spec_lines == 4

    def test_struct_annotations_counted(self, alloc_row):
        # refined_by + two rc::field = 3 data-structure annotations.
        assert alloc_row.annot_struct == 3

    def test_no_loop_annotations(self, alloc_row):
        assert alloc_row.annot_loop == 0

    def test_overhead_formula(self, alloc_row):
        expected = (alloc_row.annot_lines + alloc_row.pure_lines) \
            / alloc_row.impl_lines
        assert alloc_row.overhead == pytest.approx(expected)

    def test_types_detected(self, alloc_row):
        assert "optional" in alloc_row.types_used
        assert "uninit" in alloc_row.types_used
        assert "wand" not in alloc_row.types_used

    def test_free_list_loop_annotations(self):
        row = study_report(casestudies_dir() / "free_list.c")
        assert row.annot_loop >= 3   # exists + 2 inv_vars on the while
        assert "wand" in row.types_used
        assert "padded" in row.types_used

    def test_row_dict_roundtrip(self, alloc_row):
        d = alloc_row.row()
        assert d["study"] == "alloc"
        assert "/" in d["rules"]

    def test_format_table_contains_all_rows(self):
        rows = [study_report(casestudies_dir() / "alloc.c"),
                study_report(casestudies_dir() / "spinlock.c")]
        table = format_table(rows)
        assert "alloc" in table and "spinlock" in table

    def test_figure7_study_files_exist(self):
        base = casestudies_dir()
        for stem, _cls in FIGURE7_STUDIES:
            assert (base / f"{stem}.c").exists(), stem
