"""Switch statements: Caesium supports unstructured switches (§3, which
names Duff's device); the front end lowers C switch with fallthrough, and
the T-SWITCH rule forks per case with the scrutinee pinned."""

import pytest

from repro.caesium.eval import Machine
from repro.caesium.layout import SIZE_T
from repro.caesium.values import VInt
from repro.frontend import verify_source

SRC = '''
[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::returns("{n = 0 ? 100 : (n = 1 ? 10 : 1)} @ int<size_t>")]]
size_t weight(size_t x) {
  switch (x) {
    case 0:
      return 100;
    case 1:
      return 10;
    default:
      return 1;
  }
}

[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::requires("{n <= 3}")]]
[[rc::returns("{n = 3 ? 7 : 5} @ int<size_t>")]]
size_t with_fallthrough(size_t x) {
  size_t acc = 5;
  switch (x) {
    case 3:
      acc += 2;
      break;
    case 1:
    case 2:
      break;
  }
  return acc;
}
'''


@pytest.fixture(scope="module")
def outcome():
    return verify_source(SRC)


def test_switch_verifies(outcome):
    assert outcome.ok, outcome.report()


def test_switch_executes(outcome):
    m = Machine(outcome.typed_program.program)
    assert m.call("weight", [VInt(0, SIZE_T)]).value == 100
    assert m.call("weight", [VInt(1, SIZE_T)]).value == 10
    assert m.call("weight", [VInt(9, SIZE_T)]).value == 1


def test_fallthrough_and_shared_cases(outcome):
    m = Machine(outcome.typed_program.program)
    for x, want in [(0, 5), (1, 5), (2, 5), (3, 7)]:
        assert m.call("with_fallthrough",
                      [VInt(x, SIZE_T)]).value == want


def test_wrong_case_spec_rejected():
    bad = SRC.replace("{n = 0 ? 100 : (n = 1 ? 10 : 1)}",
                      "{n = 0 ? 100 : 10}")
    out = verify_source(bad)
    assert not out.ok


def test_duffs_device_shape():
    """Fallthrough across case bodies accumulates — the Duff's-device
    control-flow shape (§3), here with a provable result."""
    src = '''
    [[rc::parameters("n: nat")]]
    [[rc::args("n @ int<size_t>")]]
    [[rc::requires("{n <= 2}")]]
    [[rc::returns("{2 - n} @ int<size_t>")]]
    size_t remaining(size_t x) {
      size_t c = 0;
      switch (x) {
        case 0:
          c += 1;
        case 1:
          c += 1;
        case 2:
          break;
      }
      return c;
    }
    '''
    out = verify_source(src)
    assert out.ok, out.report()
    m = Machine(out.typed_program.program)
    for x, want in [(0, 2), (1, 1), (2, 0)]:
        assert m.call("remaining", [VInt(x, SIZE_T)]).value == want
