"""Integration: every Figure 7 case study verifies, with the qualitative
properties the paper reports."""

import pytest

from .conftest import ALL_STUDIES


@pytest.mark.parametrize("study", ALL_STUDIES)
def test_case_study_verifies(verified, study):
    out = verified(study)
    assert out.ok, out.report()


@pytest.mark.parametrize("study", ALL_STUDIES)
def test_no_backtracking(verified, study):
    """§5's headline claim: proof search never backtracks."""
    out = verified(study)
    for fr in out.result.functions.values():
        assert fr.stats.backtracks == 0


@pytest.mark.parametrize("study", ALL_STUDIES)
def test_automation_dominates(verified, study):
    """Rule applications far exceed distinct rules: the automation reuses
    a small library of typing rules (§7's 'Rules' column)."""
    out = verified(study)
    apps = sum(f.stats.rule_applications
               for f in out.result.functions.values())
    distinct = set()
    for f in out.result.functions.values():
        distinct |= f.stats.rules_used
    assert apps >= len(distinct)
    assert apps > 0


def test_multiset_studies_use_named_solver(verified):
    """free_list/bst discharge side conditions through multiset_solver,
    counted as manual (§7's accounting)."""
    for study in ("free_list", "bst_direct"):
        out = verified(study)
        manual = sum(f.stats.side_conditions_manual
                     for f in out.result.functions.values())
        assert manual >= 1, f"{study} unexpectedly fully automatic"


def test_simple_studies_fully_automatic(verified):
    """alloc and the concurrency examples need no manual side conditions."""
    for study in ("alloc", "alloc_from_start", "spinlock", "barrier"):
        out = verified(study)
        manual = sum(f.stats.side_conditions_manual
                     for f in out.result.functions.values())
        assert manual == 0, f"{study} needed manual side conditions"


def test_lemma_studies_record_pure_reasoning():
    from repro.proofs.manual import pure_line_count
    assert pure_line_count("binary_search") > 0
    assert pure_line_count("hashmap") > pure_line_count("binary_search")
    assert pure_line_count("alloc") == 0


def test_layered_has_more_pure_overhead_than_direct():
    """§7 #3: the layered BST carries the intermediate functional layer as
    extra manual reasoning; the direct one does not."""
    from repro.proofs.manual import pure_line_count
    assert pure_line_count("bst_layered") > pure_line_count("bst_direct")


def test_free_list_stats_shape(verified):
    """The Figure 3 example: evars are instantiated automatically, most
    side conditions are automatic, rule applications are in the hundreds."""
    out = verified("free_list")
    fr = out.result.functions["free_chunk"]
    assert fr.stats.evars_instantiated >= 5
    assert fr.stats.side_conditions_auto >= 10
    assert fr.stats.rule_applications >= 100


def test_alloc_variant_uses_same_rules(verified):
    """§6: the from-the-start variant verifies with the same rule library —
    no rule used by it is specific to it."""
    rules_a = set()
    for f in verified("alloc").result.functions.values():
        rules_a |= f.stats.rules_used
    rules_b = set()
    for f in verified("alloc_from_start").result.functions.values():
        rules_b |= f.stats.rules_used
    # The variant may use a couple of extra generic rules (locals), but
    # O-ADD-UNINIT is shared and central to both.
    assert "O-ADD-UNINIT" in rules_a and "O-ADD-UNINIT" in rules_b


def test_derivations_recorded(verified):
    out = verified("alloc")
    fr = out.result.functions["alloc"]
    assert fr.derivations
    root = fr.derivations[0]
    assert root.count("rule") > 50
    assert root.count("side_condition") > 5
