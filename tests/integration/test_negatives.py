"""Mutation tests: plausible-looking bugs in the case studies must be
rejected.  This is what keeps the headline result honest — each mutation
breaks either the code or the spec in a way the type system must catch."""


from repro.frontend import verify_source
from repro.proofs.manual import LEMMAS_BY_STUDY
from repro.report import casestudies_dir


def load(study):
    return (casestudies_dir() / f"{study}.c").read_text()


def check_fails(study, old, new):
    src = load(study)
    assert old in src, f"mutation target not found in {study}"
    mutated = src.replace(old, new)
    out = verify_source(mutated, LEMMAS_BY_STUDY.get(study), study)
    assert not out.ok, f"mutant of {study} verified: {old!r} -> {new!r}"


class TestAllocMutants:
    def test_missing_bounds_check(self):
        check_fails("alloc", "if (sz > d->len) return NULL;", "")

    def test_wrong_comparison(self):
        check_fails("alloc", "if (sz > d->len)", "if (sz >= d->len)")

    def test_forgot_len_update(self):
        check_fails("alloc", "d->len -= sz;", "")

    def test_overallocate(self):
        check_fails("alloc", "return d->buffer + d->len;",
                    "return d->buffer;")


class TestFreeListMutants:
    def test_unsorted_insert(self):
        check_fails("free_list", "if (sz <= (*cur)->size) break;",
                    "break;")

    def test_forgot_size_header(self):
        check_fails("free_list", "entry->size = sz;", "")

    def test_dropped_tail(self):
        check_fails("free_list", "entry->next = *cur;",
                    "entry->next = NULL;")

    def test_requires_needed(self):
        check_fails("free_list",
                    '[[rc::requires("{sizeof(struct chunk) <= n}")]]\n', "")


class TestListMutants:
    def test_push_wrong_order(self):
        check_fails("linked_list", "n->next = *l;", "n->next = NULL;")

    def test_pop_returns_wrong_field(self):
        check_fails("linked_list",
                    "int64_t v = n->value;\n  *l = n->next;",
                    "int64_t v = 0;\n  *l = n->next;")

    def test_length_missing_increment(self):
        check_fails("linked_list", "n += 1;", "")


class TestBstMutants:
    def test_inverted_comparison(self):
        check_fails("bst_direct",
                    "if (key <= (*t)->key) {",
                    "if (key > (*t)->key) {")

    def test_member_wrong_subtree(self):
        check_fails("bst_direct",
                    "if (key < (*t)->key) return tree_member(&(*t)->left, key);",
                    "if (key < (*t)->key) return tree_member(&(*t)->right, key);")


class TestConcurrencyMutants:
    def test_unlock_without_token(self):
        check_fails("spinlock",
                    '[[rc::requires("tok(lockres, 0)")]]\n', "")

    def test_lock_without_cas(self):
        # Writing the lock word non-atomically is rejected.
        check_fails("spinlock",
                    "atomic_store(&l->locked, 0);",
                    "l->locked = 0;")

    def test_allocator_critical_section_leak(self):
        # Releasing the lock before using the state: the state's ownership
        # is returned at the store, so the later access must fail.
        src = load("threadsafe_alloc")
        old = ("  if (sz <= POOL.state.len) {\n"
               "    POOL.state.len -= sz;\n"
               "    res = POOL.state.buffer + POOL.state.len;\n"
               "  }\n"
               "  atomic_store(&POOL.lock.word, 0);")
        new = ("  atomic_store(&POOL.lock.word, 0);\n"
               "  if (sz <= POOL.state.len) {\n"
               "    POOL.state.len -= sz;\n"
               "    res = POOL.state.buffer + POOL.state.len;\n"
               "  }")
        assert old in src
        out = verify_source(src.replace(old, new))
        assert not out.ok


class TestHashmapMutants:
    def test_put_without_probe(self):
        check_fails("hashmap", "size_t i = hm_find(h, key);\n  h->keys[i] = key;",
                    "size_t i = 0;\n  h->keys[i] = key;")

    def test_get_ignores_key_check(self):
        check_fails("hashmap",
                    "if (h->keys[i] == key) {\n    return h->vals[i];\n  }\n  return 0;",
                    "return h->vals[i];")
