"""Shared fixtures: verified case-study outcomes, cached per session."""

import pytest

from repro.frontend import verify_file
from repro.report import casestudies_dir

_CACHE = {}


@pytest.fixture(scope="session")
def verified():
    """Verify a case study once per session and cache the outcome."""

    def get(study: str):
        if study not in _CACHE:
            _CACHE[study] = verify_file(casestudies_dir() / f"{study}.c")
        return _CACHE[study]

    return get


ALL_STUDIES = [
    "alloc", "alloc_from_start", "free_list", "linked_list", "queue",
    "binary_search", "page_alloc", "bst_direct", "bst_layered", "hashmap",
    "mpool", "spinlock", "barrier", "threadsafe_alloc",
]
