"""Adequacy: verified case studies run correctly on the Caesium
interpreter — the executable substitute for the paper's Coq soundness."""


from repro.proofs import adequacy


def test_alloc():
    assert adequacy.check_alloc("alloc", trials=25) > 0


def test_alloc_from_start():
    assert adequacy.check_alloc("alloc_from_start", trials=25) > 0


def test_free_list():
    assert adequacy.check_free_list(trials=15) > 0


def test_linked_list():
    assert adequacy.check_linked_list(trials=15) > 0


def test_queue_is_fifo():
    assert adequacy.check_queue(trials=15) > 0


def test_binary_search_matches_bisect():
    assert adequacy.check_binary_search(trials=40) > 0


def test_page_alloc():
    assert adequacy.check_page_alloc(trials=10) > 0


def test_mpool():
    assert adequacy.check_mpool(trials=10) > 0


def test_bst_direct():
    assert adequacy.check_bst("bst_direct", trials=15) > 0


def test_bst_layered():
    assert adequacy.check_bst("bst_layered", trials=15) > 0


def test_hashmap_matches_dict():
    assert adequacy.check_hashmap(trials=15) > 0


def test_spinlock_mutual_exclusion():
    """Concurrent increments under the verified spinlock: no data race
    (UB) in any explored interleaving, no lost update."""
    assert adequacy.check_spinlock_concurrent(threads=3, rounds=4,
                                              seeds=range(6)) == 6


def test_unlocked_version_races():
    """Sanity: without the lock, the race detector fires — the detector
    (and hence the mutual-exclusion test) is not vacuous."""
    assert adequacy.check_spinlock_race_detected(seeds=range(6)) > 0
