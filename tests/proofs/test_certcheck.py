"""Certificate checking: derivations re-validate independently of the
search engine."""

import pytest

from repro.frontend import verify_file
from repro.proofs.certcheck import check_derivation
from repro.pure.solver import PureSolver
from repro.refinedc.rules import REGISTRY
from repro.report import casestudies_dir


@pytest.fixture(scope="module")
def alloc_outcome():
    return verify_file(casestudies_dir() / "alloc.c")


def test_alloc_certificate_checks(alloc_outcome):
    fr = alloc_outcome.result.functions["alloc"]
    report = check_derivation(fr.derivations[0], REGISTRY, PureSolver())
    assert report.ok, report.problems
    assert report.rules_checked > 50
    # All of alloc's side conditions round-trip and re-prove.
    assert report.side_conditions_rechecked >= 10
    assert report.side_conditions_skipped == 0


def test_all_rules_in_derivation_are_registered(alloc_outcome):
    names = {r.name for r in REGISTRY.all_rules()}
    fr = alloc_outcome.result.functions["alloc"]
    for node in fr.derivations[0].walk():
        if node.kind == "rule":
            assert node.label in names


def test_tampered_derivation_detected(alloc_outcome):
    """Forging a rule name in the derivation is caught."""
    import copy
    fr = alloc_outcome.result.functions["alloc"]
    forged = copy.deepcopy(fr.derivations[0])
    for node in forged.walk():
        if node.kind == "rule":
            object.__setattr__ if False else setattr(node, "label",
                                                     "FORGED-RULE")
            break
    report = check_derivation(forged, REGISTRY, PureSolver())
    assert not report.ok
    assert any("FORGED-RULE" in p for p in report.problems)


def test_tampered_side_condition_detected(alloc_outcome):
    """Claiming a false side condition was proved is caught on re-check."""
    import copy
    fr = alloc_outcome.result.functions["alloc"]
    forged = copy.deepcopy(fr.derivations[0])
    for node in forged.walk():
        if node.kind == "side_condition" and node.detail.get("hypotheses") \
                is not None:
            node.label = "le(1, 0)"
            break
    report = check_derivation(forged, REGISTRY, PureSolver())
    assert not report.ok


def test_free_list_certificate(alloc_outcome):
    out = verify_file(casestudies_dir() / "free_list.c")
    fr = out.result.functions["free_chunk"]
    solver = PureSolver(tactics=["multiset_solver"])
    for d in fr.derivations:
        report = check_derivation(d, REGISTRY, solver)
        assert report.ok, report.problems


def test_counts_match_stats(alloc_outcome):
    """The derivation records as many rule applications as the stats."""
    fr = alloc_outcome.result.functions["alloc"]
    recorded = sum(d.count("rule") for d in fr.derivations)
    assert recorded == fr.stats.rule_applications
