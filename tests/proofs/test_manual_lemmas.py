"""Validation of the manual lemma statements.

In the paper these facts are *proved* in Coq; here they are assumed by the
solver, so we validate each statement against its mathematical meaning on
randomly generated ground instances (hypothesis).  A false lemma statement
would make the whole verification unsound — this is the guard rail.
"""

import bisect

from hypothesis import given, settings, strategies as st

from repro.proofs import manual
from repro.pure.eval import evaluate


# ---------------------------------------------------------------------
# Ground models of the uninterpreted functions.
# ---------------------------------------------------------------------

def lb_model(xs, k):
    """lb(xs, k) = least index i with k <= xs[i], else len(xs)."""
    return bisect.bisect_left(list(xs), k)


def hm_ok_model(ks):
    """Key array invariant: keys unique, at least one slot free, and every
    stored key reachable by its own probe sequence (linear probing)."""
    ks = list(ks)
    if len(ks) != 16:
        return False
    nonzero = [k for k in ks if k != 0]
    if len(set(nonzero)) != len(nonzero) or 0 not in ks:
        return False
    return all(ks[hm_slot_model(ks, k)] == k for k in nonzero)


def hm_has_room_model(ks):
    return list(ks).count(0) >= 2


def hm_probe_model(ks, k, j):
    ks = list(ks)
    for _ in range(len(ks)):
        if ks[j] == k or ks[j] == 0:
            return j
        j = (j + 1) % len(ks)
    return j


def hm_slot_model(ks, k):
    return hm_probe_model(ks, k, k % 16)


def _env(**kwargs):
    env = dict(kwargs)
    env["fn:lb"] = lb_model
    env["fn:hm_ok"] = hm_ok_model
    env["fn:hm_probe"] = hm_probe_model
    env["fn:hm_slot"] = hm_slot_model
    env["fn:hm_has_room"] = hm_has_room_model
    env["fn:fmember"] = lambda s, x: s[x] > 0
    env["fn:finsert"] = lambda s, x: _madd(s, x)
    return env


def _madd(s, x):
    from collections import Counter
    out = Counter(s)
    out[x] += 1
    return out


def _holds(lemma, env):
    """Check a lemma instance: all hypotheses true => conclusion true."""
    binding = {p.name: env[p.name] for p in lemma.params}
    full = _env(**binding)
    if all(evaluate(h, full) for h in lemma.hyps):
        assert evaluate(lemma.conclusion, full), \
            f"lemma {lemma.name} is FALSE for {binding}"


sorted_lists = st.lists(st.integers(-30, 30), max_size=20).map(
    lambda l: tuple(sorted(l)))


@given(xs=sorted_lists, k=st.integers(-40, 40))
@settings(max_examples=200, deadline=None)
def test_binary_search_lemmas(xs, k):
    for lemma in manual.BINARY_SEARCH_LEMMAS.values():
        if any(p.name == "I" for p in lemma.params):
            for i in range(len(xs)):
                _holds(lemma, {"XS": xs, "K": k, "I": i})
        else:
            _holds(lemma, {"XS": xs, "K": k})


def key_arrays():
    """Generate arrays satisfying (and some violating) hm_ok."""
    return st.lists(st.integers(0, 40), min_size=16, max_size=16).map(tuple)


@given(ks=key_arrays(), k=st.integers(1, 40), j=st.integers(0, 15))
@settings(max_examples=200, deadline=None)
def test_hashmap_lemmas(ks, k, j):
    from collections import Counter
    for lemma in manual.HASHMAP_LEMMAS.values():
        names = {p.name for p in lemma.params}
        binding = {"KS": ks}
        if "K" in names:
            binding["K"] = k
        if "J" in names:
            binding["J"] = j
        _holds(lemma, binding)


@given(kv=st.integers(0, 20),
       left=st.lists(st.integers(0, 20), max_size=6),
       right=st.lists(st.integers(0, 20), max_size=6),
       k=st.integers(0, 20))
@settings(max_examples=200, deadline=None)
def test_bst_layer_lemmas(kv, left, right, k):
    from collections import Counter
    l = Counter(x for x in left if x <= kv)
    r = Counter(x for x in right if x >= kv)
    s = Counter(l)
    s.update(r)
    for lemma in (manual.LAYER_MEMBER_LEFT, manual.LAYER_MEMBER_RIGHT):
        _holds(lemma, {"K": k, "N": kv, "S1": l, "S2": r})
    for lemma in (manual.FMEMBER_DEF, manual.FINSERT_DEF):
        _holds(lemma, {"S": s, "K": k})


def test_pure_line_count_positive():
    assert manual.pure_line_count("binary_search") > 0
    assert manual.pure_line_count("nonexistent_study") == 0
