"""The executable semantic model of types: building and checking memory
against RefinedC types, with real separation (footprints)."""

import pytest

from repro.caesium.layout import SIZE_T, IntLayout, PtrLayout, StructLayout
from repro.caesium.memory import Memory
from repro.caesium.values import NULL, VInt, VPtr, encode_int, encode_ptr
from repro.proofs.semantics import (CheckFailure, SemanticBuilder,
                                    SemanticChecker)
from repro.pure import Sort, terms as T
from repro.refinedc import (IntT, NullT, OptionalT, OwnPtr,
                            RawStructAnnotations, SpecContext, TypeTable,
                            UninitT, define_struct_type)


@pytest.fixture
def mem_t_ctx():
    ctx = SpecContext()
    layout = StructLayout("mem_t", (("len", IntLayout(SIZE_T)),
                                    ("buffer", PtrLayout())))
    ctx.structs["mem_t"] = layout
    define_struct_type(layout, RawStructAnnotations(
        refined_by=["a: nat"],
        fields={"len": "a @ int<size_t>", "buffer": "&own<uninit<a>>"},
    ), ctx)
    return ctx


class TestCheckScalar:
    def test_refined_int_ok(self):
        mem = Memory()
        loc = mem.allocate(8)
        mem.store(loc, encode_int(42, SIZE_T))
        checker = SemanticChecker(mem, TypeTable(), {"n": 42})
        checker.check_loc(loc, IntT(SIZE_T, T.var("n")))

    def test_refined_int_mismatch(self):
        mem = Memory()
        loc = mem.allocate(8)
        mem.store(loc, encode_int(41, SIZE_T))
        checker = SemanticChecker(mem, TypeTable(), {"n": 42})
        with pytest.raises(CheckFailure):
            checker.check_loc(loc, IntT(SIZE_T, T.var("n")))

    def test_poison_rejected(self):
        mem = Memory()
        loc = mem.allocate(8)
        checker = SemanticChecker(mem, TypeTable())
        with pytest.raises(CheckFailure):
            checker.check_loc(loc, IntT(SIZE_T, None))

    def test_uninit_accepts_poison(self):
        mem = Memory()
        loc = mem.allocate(8)
        checker = SemanticChecker(mem, TypeTable())
        checker.check_loc(loc, UninitT(T.intlit(8)))

    def test_null_value(self):
        checker = SemanticChecker(Memory(), TypeTable())
        checker.check_val(VPtr(NULL), NullT())
        with pytest.raises(CheckFailure):
            checker.check_val(VInt(0, SIZE_T), NullT())

    def test_optional_dispatches_on_condition(self):
        checker = SemanticChecker(Memory(), TypeTable(), {"b": True})
        ty = OptionalT(T.var("b", Sort.BOOL), NullT(), IntT(SIZE_T, None))
        with pytest.raises(CheckFailure):
            checker.check_val(VInt(1, SIZE_T), ty)  # b: expects then-branch
        checker.check_val(VPtr(NULL), ty)


class TestSeparation:
    def test_double_claim_detected(self):
        """ℓ ◁ τ ∗ ℓ ◁ τ is unsatisfiable: the footprint enforces ∗."""
        mem = Memory()
        loc = mem.allocate(8)
        mem.store(loc, encode_int(7, SIZE_T))
        checker = SemanticChecker(mem, TypeTable())
        checker.check_loc(loc, IntT(SIZE_T, None))
        with pytest.raises(CheckFailure):
            checker.check_loc(loc, IntT(SIZE_T, None))

    def test_own_claims_target(self, mem_t_ctx):
        mem = Memory()
        cell = mem.allocate(8)
        target = mem.allocate(8)
        mem.store(cell, encode_ptr(target))
        mem.store(target, encode_int(3, SIZE_T))
        checker = SemanticChecker(mem, mem_t_ctx.types)
        checker.check_loc(cell, OwnPtr(IntT(SIZE_T, None)))
        # The pointee is now claimed too:
        with pytest.raises(CheckFailure):
            checker.check_loc(target, IntT(SIZE_T, None))


class TestMemT:
    """The Figure 1 invariant, checked semantically."""

    def _build_state(self, mem, a):
        buf = mem.allocate(a)
        state = mem.allocate(16)
        mem.store(state, encode_int(a, SIZE_T))
        mem.store(state + 8, encode_ptr(buf))
        return state

    def test_good_state(self, mem_t_ctx):
        from repro.refinedc import NamedT
        mem = Memory()
        state = self._build_state(mem, 32)
        checker = SemanticChecker(mem, mem_t_ctx.types, {"a0": 32})
        checker.check_loc(state, NamedT("mem_t", (T.var("a0"),)))

    def test_len_field_lie_detected(self, mem_t_ctx):
        """len claims more bytes than the buffer owns: the semantic model
        rejects it (this is exactly the mem_t invariant)."""
        from repro.refinedc import NamedT
        mem = Memory()
        buf = mem.allocate(16)           # only 16 bytes...
        state = mem.allocate(16)
        mem.store(state, encode_int(32, SIZE_T))   # ...but len says 32
        mem.store(state + 8, encode_ptr(buf))
        checker = SemanticChecker(mem, mem_t_ctx.types, {"a0": 32})
        with pytest.raises((CheckFailure, Exception)):
            checker.check_loc(state, NamedT("mem_t", (T.var("a0"),)))


class TestBuilder:
    def test_build_then_check_roundtrip(self, mem_t_ctx):
        from repro.refinedc import NamedT
        mem = Memory()
        builder = SemanticBuilder(mem, mem_t_ctx.types, {"a0": 24})
        state = mem.allocate(16)
        builder.build_loc(state, NamedT("mem_t", (T.var("a0"),)))
        checker = SemanticChecker(mem, mem_t_ctx.types, {"a0": 24})
        checker.check_loc(state, NamedT("mem_t", (T.var("a0"),)))

    def test_build_optional(self, mem_t_ctx):
        mem = Memory()
        builder = SemanticBuilder(mem, mem_t_ctx.types, {"b": False})
        v = builder.build_val(OptionalT(T.var("b", Sort.BOOL),
                                        OwnPtr(UninitT(T.intlit(4))),
                                        NullT()))
        assert isinstance(v, VPtr) and v.ptr.is_null
