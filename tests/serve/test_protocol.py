"""Wire-protocol unit tests: validation is strict, errors structured."""

import json

import pytest

from repro.serve.protocol import (MAX_BODY_BYTES, PROTOCOL_VERSION,
                                  ProtocolError, encode_event, event,
                                  parse_request)


def body(**kw):
    kw.setdefault("protocol", PROTOCOL_VERSION)
    return json.dumps(kw).encode()


class TestParseRequest:
    def test_minimal_verify(self):
        req = parse_request(body(method="verify"))
        assert req.method == "verify"
        assert req.params == {}
        assert req.id == ""

    def test_full_verify(self):
        req = parse_request(body(
            method="verify", id="r1",
            params={"paths": ["queue", "mpool.c"], "root": "/p",
                    "jobs": 4, "full": True}))
        assert req.id == "r1"
        assert req.params["paths"] == ["queue", "mpool.c"]

    @pytest.mark.parametrize("method", ["status", "reset", "shutdown"])
    def test_control_methods(self, method):
        assert parse_request(body(method=method)).method == method

    def test_protocol_defaults_to_current(self):
        req = parse_request(json.dumps({"method": "status"}).encode())
        assert req.method == "status"

    @pytest.mark.parametrize("raw,code", [
        (b"\xff\xfe not json", "parse-error"),
        (b"{nope", "parse-error"),
        (b"[1,2]", "bad-request"),
        (b'{"protocol": 99, "method": "status"}', "bad-request"),
        (b'{"method": "frobnicate"}', "unknown-method"),
        (b'{"method": 7}', "unknown-method"),
        (b'{"method": "verify", "params": []}', "bad-request"),
        (b'{"method": "verify", "id": 5}', "bad-request"),
    ])
    def test_defects_are_structured(self, raw, code):
        with pytest.raises(ProtocolError) as exc:
            parse_request(raw)
        assert exc.value.code == code

    def test_oversized_body_is_structured(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(b"x" * (MAX_BODY_BYTES + 1))
        assert exc.value.code == "request-too-large"
        assert exc.value.http_status == 413

    @pytest.mark.parametrize("params", [
        {"paths": "queue"},            # not a list
        {"paths": [""]},               # empty element
        {"paths": [1]},                # non-string element
        {"root": 7},
        {"jobs": 0},
        {"jobs": -2},
        {"jobs": True},                # bool is not a job count
        {"jobs": "4"},
        {"full": "yes"},
    ])
    def test_bad_verify_params(self, params):
        with pytest.raises(ProtocolError) as exc:
            parse_request(body(method="verify", params=params))
        assert exc.value.code == "bad-params"


class TestEvents:
    def test_event_discriminator_is_positional_only(self):
        # function events legitimately carry a `name` payload field
        ev = event("function", name="mpool_alloc", ok=True)
        assert ev["event"] == "function"
        assert ev["name"] == "mpool_alloc"

    def test_encode_is_one_sorted_line(self):
        line = encode_event(event("done", warm=True, clean=3))
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert line == b'{"clean":3,"event":"done","warm":true}\n'

    def test_encode_is_deterministic_across_insertion_order(self):
        a = encode_event({"b": 1, "a": 2, "event": "x"})
        b = encode_event({"event": "x", "a": 2, "b": 1})
        assert a == b

    def test_protocol_error_to_event(self):
        ev = ProtocolError("bad-params", "nope").to_event()
        assert ev == {"event": "error", "code": "bad-params",
                      "message": "nope"}
