"""Fixtures for the serve tests: real daemons on ephemeral ports.

The daemon runs in a background thread with its own event loop — the
exact topology ``rcd start --foreground`` uses — against tiny project
directories populated with real case studies (every study verifies in
well under 100ms, so a full request/response cycle is cheap).  Tests
run at ``jobs=1``: the serial in-process path exercises every protocol,
queueing and namespace behaviour without paying pool fork cost; the
pool-specific recovery path is driven through an injected fake session
(see ``test_server.py``).
"""

import asyncio
import shutil
import threading

import pytest

from repro.report import casestudies_dir
from repro.serve import DaemonClient, ServeConfig, VerifyDaemon

#: small, fast studies used to populate serve project directories
PROJECT_STUDIES = ("queue", "mpool")


def make_project(root, studies=PROJECT_STUDIES):
    root.mkdir(parents=True, exist_ok=True)
    for stem in studies:
        shutil.copy(casestudies_dir() / f"{stem}.c", root / f"{stem}.c")
    return root


@pytest.fixture
def project(tmp_path):
    return make_project(tmp_path / "proj")


@pytest.fixture
def daemon_factory(tmp_path):
    """Start daemons on demand; every one is stopped at teardown."""
    running = []

    def start(root, **cfg_kw):
        cfg_kw.setdefault("jobs", 1)
        cfg = ServeConfig(root=root, **cfg_kw)
        daemon = VerifyDaemon(cfg)
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(daemon.start())
            ready.set()
            loop.run_until_complete(daemon.serve_forever())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10), "daemon failed to start"
        running.append((daemon, loop, thread))
        client = DaemonClient(daemon.host, daemon.port, timeout=60)
        return daemon, client

    yield start

    for daemon, loop, thread in running:
        try:
            loop.call_soon_threadsafe(daemon.request_stop)
        except RuntimeError:
            pass          # loop already closed: daemon shut itself down
        thread.join(timeout=10)


@pytest.fixture
def daemon(daemon_factory, project):
    return daemon_factory(project)


def events_of(events, name):
    return [ev for ev in events if ev.get("event") == name]


def done_of(events):
    done = events_of(events, "done")
    assert len(done) == 1, f"expected one done event, got {events}"
    return done[0]
