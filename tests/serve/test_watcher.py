"""FileWatcher: content changes fire, bare touches are absorbed."""

import os

from repro.serve.watcher import FileWatcher


def bump_mtime(path):
    st = path.stat()
    os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))


def test_quiet_poll_is_clean(tmp_path):
    f = tmp_path / "a.c"
    f.write_text("int x;\n")
    w = FileWatcher([f])
    res = w.poll()
    assert not res.dirty


def test_content_change_fires_once(tmp_path):
    f = tmp_path / "a.c"
    f.write_text("int x;\n")
    w = FileWatcher([f])
    f.write_text("int y;\n")
    bump_mtime(f)
    assert w.poll().changed == [f]
    assert not w.poll().dirty          # snapshot advanced


def test_bare_touch_is_absorbed(tmp_path):
    f = tmp_path / "a.c"
    f.write_text("int x;\n")
    w = FileWatcher([f])
    bump_mtime(f)                      # mtime moved, content identical
    assert not w.poll().dirty


def test_deletion_reported_separately(tmp_path):
    f = tmp_path / "a.c"
    f.write_text("int x;\n")
    w = FileWatcher([f])
    f.unlink()
    res = w.poll()
    assert res.deleted == [f] and res.changed == []
    assert not w.poll().dirty          # still gone: reported once


def test_reappearance_counts_as_changed(tmp_path):
    f = tmp_path / "a.c"
    f.write_text("int x;\n")
    w = FileWatcher([f])
    f.unlink()
    w.poll()
    f.write_text("int x;\n")
    assert w.poll().changed == [f]


def test_missing_at_start_then_created(tmp_path):
    f = tmp_path / "late.c"
    w = FileWatcher([f])
    assert not w.poll().dirty
    f.write_text("int z;\n")
    assert w.poll().changed == [f]
