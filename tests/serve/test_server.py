"""Daemon behaviour: streams, namespaces, errors, recovery, drain.

Every test talks to a real daemon over a real socket (ephemeral port,
background thread — see conftest).  The driver underneath is the real
one on real case studies; only the pool-crash test injects a failure.
"""

import http.client
import json
import threading

import pytest

from repro.frontend import verify_files
from repro.serve import DaemonError
from .conftest import done_of, events_of, make_project


def batch_fingerprint(paths):
    """(unit, fn, ok, counters) rows from one plain batch run — the
    reference the daemon's streamed results must match exactly."""
    outcomes = verify_files(paths, jobs=1, cache_dir=None,
                            incremental=False, ledger=False)
    return sorted(
        (stem, name, fr.ok, fr.stats.counters())
        for stem, out in outcomes.items()
        for name, fr in out.result.functions.items())


def serve_fingerprint(events):
    return sorted(
        (ev["unit"], ev["name"], ev["ok"], ev["counters"])
        for ev in events_of(events, "function"))


def raw_post(daemon, body, path="/rpc"):
    conn = http.client.HTTPConnection(daemon.host, daemon.port,
                                      timeout=30)
    try:
        conn.request("POST", path, body,
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        lines = [json.loads(l) for l in resp.read().splitlines() if l]
        return resp.status, lines
    finally:
        conn.close()


# ---------------------------------------------------------------------
# The verify stream.
# ---------------------------------------------------------------------

class TestVerifyStream:
    def test_cold_request_matches_batch_outcomes(self, daemon, project):
        _, client = daemon
        events = client.verify()
        done = done_of(events)
        assert done["ok"] is True
        assert done["warm"] is False
        assert serve_fingerprint(events) == batch_fingerprint(
            sorted(project.glob("*.c")))

    def test_stream_orders_queued_start_units_done(self, daemon):
        _, client = daemon
        names = [ev["event"] for ev in client.verify()]
        assert names[0] == "queued"
        assert names[1] == "start"
        assert names[-1] == "done"
        assert names.count("unit") == 2          # queue + mpool

    def test_warm_request_rechecks_nothing(self, daemon):
        _, client = daemon
        client.verify()
        done = done_of(client.verify())
        assert done["warm"] is True
        assert done["rechecked"] == 0
        assert done["clean"] == done["functions"] > 0

    def test_warm_results_stay_identical(self, daemon, project):
        _, client = daemon
        cold = client.verify()
        warm = client.verify()
        assert serve_fingerprint(cold) == serve_fingerprint(warm)

    def test_edit_dirties_only_the_edited_unit(self, daemon, project):
        _, client = daemon
        client.verify()
        src = (project / "queue.c").read_text()
        (project / "queue.c").write_text(src + "\n")
        done = done_of(client.verify())
        units = {ev["unit"]: ev for ev in
                 events_of(client.verify(), "unit")}
        assert done["ok"] is True
        assert units["mpool"]["rechecked"] == 0

    def test_full_bypasses_caches(self, daemon):
        _, client = daemon
        client.verify()
        done = done_of(client.verify(full=True))
        assert done["warm"] is False
        assert done["rechecked"] == done["functions"] > 0


# ---------------------------------------------------------------------
# Namespaces.
# ---------------------------------------------------------------------

class TestNamespaces:
    def test_concurrent_clients_two_namespaces(self, daemon, tmp_path):
        d, client = daemon
        other = make_project(tmp_path / "other", studies=("alloc",))
        results = {}

        def hit(key, **kw):
            results[key] = client.verify(**kw)

        threads = [
            threading.Thread(target=hit, args=("a",)),
            threading.Thread(target=hit, args=("b",),
                             kwargs={"root": str(other)}),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        done_a, done_b = done_of(results["a"]), done_of(results["b"])
        assert done_a["ok"] and done_b["ok"]
        assert done_a["namespace"] != done_b["namespace"]
        units_b = {ev["unit"] for ev in
                   events_of(results["b"], "function")}
        assert units_b == {"alloc"}
        # each namespace got its own on-disk cache
        assert (d.config.root / ".rc-cache").is_dir()
        assert (other / ".rc-cache").is_dir()
        # and requests were serialized through one queue
        assert d.queue.stats()["served"] == 2

    def test_namespace_warmth_is_independent(self, daemon, tmp_path):
        _, client = daemon
        other = make_project(tmp_path / "other", studies=("alloc",))
        client.verify()
        assert done_of(client.verify())["warm"] is True
        # first contact with the second namespace is cold...
        assert done_of(client.verify(root=str(other)))["warm"] is False
        # ...and does not chill the first
        assert done_of(client.verify())["warm"] is True

    def test_deterministic_across_namespaces(self, daemon, tmp_path):
        _, client = daemon
        other = make_project(tmp_path / "other")   # same two studies
        a = client.verify()
        b = client.verify(root=str(other))
        assert serve_fingerprint(a) == serve_fingerprint(b)


# ---------------------------------------------------------------------
# Structured errors; the daemon must survive all of them.
# ---------------------------------------------------------------------

class TestErrors:
    def test_malformed_json_is_structured(self, daemon):
        d, client = daemon
        status, lines = raw_post(d, b"{nope")
        assert status == 400
        assert lines[0]["code"] == "parse-error"
        assert client.ping()

    def test_oversized_body_is_refused_readably(self, daemon):
        d, client = daemon
        status, lines = raw_post(d, b"x" * (2 << 20))
        assert status == 413
        assert lines[0]["code"] == "request-too-large"
        assert client.ping()

    def test_get_is_rejected(self, daemon):
        d, client = daemon
        conn = http.client.HTTPConnection(d.host, d.port, timeout=30)
        try:
            conn.request("GET", "/rpc")
            resp = conn.getresponse()
            assert resp.status == 405
            ev = json.loads(resp.read().splitlines()[0])
            assert ev["code"] == "bad-http"
        finally:
            conn.close()
        assert client.ping()

    def test_unknown_method_event(self, daemon):
        _, client = daemon
        ev = next(client.request("frobnicate"))
        assert ev["event"] == "error"
        assert ev["code"] == "unknown-method"

    def test_bad_namespace_root(self, daemon, tmp_path):
        _, client = daemon
        with pytest.raises(DaemonError) as exc:
            client.verify(root=str(tmp_path / "nowhere"))
        assert exc.value.code == "bad-params"

    def test_path_escaping_namespace_is_refused(self, daemon, tmp_path):
        _, client = daemon
        (tmp_path / "outside.c").write_text("int x;\n")
        with pytest.raises(DaemonError) as exc:
            client.verify(paths=["../outside"])
        assert exc.value.code == "bad-params"
        assert "outside the namespace" in exc.value.message

    def test_missing_path_is_refused(self, daemon):
        _, client = daemon
        with pytest.raises(DaemonError) as exc:
            client.verify(paths=["no_such_study"])
        assert exc.value.code == "bad-params"

    def test_errors_do_not_kill_later_verifies(self, daemon):
        d, client = daemon
        raw_post(d, b"{nope")
        raw_post(d, b"x" * (2 << 20))
        with pytest.raises(DaemonError):
            client.verify(paths=["no_such_study"])
        assert done_of(client.verify())["ok"] is True


# ---------------------------------------------------------------------
# Poisoned-pool recovery.
# ---------------------------------------------------------------------

class FakeSession:
    jobs = 2
    batches = 0
    tasks = 0
    resets = 0

    def reset(self):
        self.resets += 1

    def close(self):
        pass


class TestCrashRecovery:
    def test_pool_crash_resets_and_retries_serially(self, daemon_factory,
                                                    tmp_path):
        project = make_project(tmp_path / "proj", studies=("queue",))
        daemon, client = daemon_factory(project)
        fake = FakeSession()
        daemon.config.jobs = 2           # session() now hands out `fake`
        daemon._session = fake

        original = daemon._run_verify
        state = {"failed": False}

        def flaky(paths, ns, jobs, session, full):
            if session is not None and not state["failed"]:
                state["failed"] = True
                raise RuntimeError("worker died mid-task")
            return original(paths, ns, 1, None, full)

        daemon._run_verify = flaky
        events = client.verify()
        done = done_of(events)
        recovered = events_of(events, "recovered")

        assert state["failed"], "injected failure never triggered"
        assert len(recovered) == 1
        assert recovered[0]["retry"] == "serial"
        assert recovered[0]["unit"] == "queue"
        assert done["ok"] is True
        assert done["recovered"] == 1
        assert fake.resets == 1
        assert daemon.pool_recoveries == 1
        # the daemon is healthy afterwards
        assert done_of(client.verify())["ok"] is True


# ---------------------------------------------------------------------
# Drain and shutdown.
# ---------------------------------------------------------------------

class TestLifecycle:
    def test_draining_refuses_verify(self, daemon):
        d, client = daemon
        d.draining = True
        try:
            with pytest.raises(DaemonError) as exc:
                client.verify()
            assert exc.value.code == "draining"
        finally:
            d.draining = False
        assert done_of(client.verify())["ok"] is True

    def test_shutdown_stops_and_removes_state_file(self, daemon_factory,
                                                   tmp_path):
        project = make_project(tmp_path / "proj", studies=("queue",))
        daemon, client = daemon_factory(project)
        state_file = daemon.config.resolved_state_file()
        assert state_file.is_file()
        ev = client.shutdown()
        assert ev["event"] == "shutting-down"
        deadline = threading.Event()
        for _ in range(100):
            if not state_file.exists():
                break
            deadline.wait(0.05)
        assert not state_file.exists()
        assert not client.ping()

    def test_status_reports_queue_and_namespaces(self, daemon):
        d, client = daemon
        client.verify()
        st = client.status()
        assert st["requests_served"] == 1
        assert st["draining"] is False
        assert st["queue"]["served"] == 1
        assert str(d.config.root) in st["namespaces"]
        ns = st["namespaces"][str(d.config.root)]
        assert ns["functions_checked"] > 0


# ---------------------------------------------------------------------
# Ledger threading.
# ---------------------------------------------------------------------

class TestLedger:
    def test_each_request_appends_a_serve_record(self, daemon_factory,
                                                 tmp_path):
        project = make_project(tmp_path / "proj", studies=("queue",))
        ledger = tmp_path / "serve-ledger.jsonl"
        daemon, client = daemon_factory(project, ledger_path=ledger)
        client.verify()
        client.verify()
        records = [json.loads(line)
                   for line in ledger.read_text().splitlines()]
        assert [r["kind"] for r in records] == ["serve", "serve"]
        cold, warm = records
        assert cold["extra"]["warm"] is False
        assert warm["extra"]["warm"] is True
        assert warm["extra"]["rechecked"] == 0
        assert cold["suite"] == ["queue"]
        assert cold["extra"]["queue_wait_s"] >= 0
        assert cold["config"]["incremental"] is True
