"""Tests for the annotation expression parser (unicode + ASCII syntax)."""

import pytest

from repro.pure import Sort, SpecParseError, parse_sort, parse_term, terms as T

a, n, p = T.var("a"), T.var("n"), T.var("p", Sort.LOC)
s, tail = T.var("s", Sort.MSET), T.var("tail", Sort.MSET)
xs = T.var("xs", Sort.LIST)
ENV = {"a": a, "n": n, "p": p, "s": s, "tail": tail, "xs": xs}


class TestParseSort:
    def test_nat(self):
        assert parse_sort("nat") == (Sort.INT, True)

    def test_int(self):
        assert parse_sort("int") == (Sort.INT, False)

    def test_loc(self):
        assert parse_sort("loc") == (Sort.LOC, False)

    def test_gmultiset(self):
        assert parse_sort("{gmultiset nat}") == (Sort.MSET, False)

    def test_list(self):
        assert parse_sort("{list Z}") == (Sort.LIST, False)

    def test_unknown(self):
        with pytest.raises(SpecParseError):
            parse_sort("widget")


class TestParseTerm:
    def test_comparison_unicode(self):
        assert parse_term("n ≤ a", ENV) == T.le(n, a)

    def test_comparison_ascii(self):
        assert parse_term("n <= a", ENV) == T.le(n, a)

    def test_coq_braces_stripped(self):
        assert parse_term("{n ≤ a}", ENV) == T.le(n, a)

    def test_arith_precedence(self):
        t = parse_term("a + 2 * n", ENV)
        assert t == T.add(a, T.mul(T.intlit(2), n))

    def test_ternary(self):
        t = parse_term("n ≤ a ? a - n : a", ENV)
        assert t == T.ite(T.le(n, a), T.sub(a, n), a)

    def test_multiset_union(self):
        t = parse_term("{[n]} ⊎ tail", ENV)
        assert t == T.munion(T.msingle(n), tail)

    def test_multiset_union_ascii(self):
        t = parse_term("{[n]} (+) tail", ENV)
        assert t == T.munion(T.msingle(n), tail)

    def test_empty_mset(self):
        assert parse_term("s ≠ ∅", ENV) == T.ne(s, T.mempty())

    def test_forall_membership_pattern(self):
        t = parse_term("∀ k, k ∈ tail → n ≤ k", ENV)
        assert t == T.mall_ge(tail, n)

    def test_forall_ascii(self):
        t = parse_term("forall k, k in tail -> n <= k", ENV)
        assert t == T.mall_ge(tail, n)

    def test_forall_unsupported_shape(self):
        with pytest.raises(SpecParseError):
            parse_term("forall k, k in tail -> k <= k + 1", ENV)

    def test_list_syntax(self):
        t = parse_term("1 :: xs ++ []", ENV)
        assert t == T.cons(T.intlit(1), T.append(xs, T.nil()))

    def test_list_literal(self):
        t = parse_term("[1, 2, 3]", ENV)
        assert t == T.list_lit(T.intlit(1), T.intlit(2), T.intlit(3))

    def test_len_function(self):
        assert parse_term("len(xs)", ENV) == T.length(xs)

    def test_loc_plus_offset(self):
        assert parse_term("p + 8", ENV) == T.loc_offset(p, T.intlit(8))

    def test_sizeof_constant(self):
        consts = {"sizeof(struct chunk)": T.intlit(16)}
        t = parse_term("sizeof(struct chunk) ≤ n", ENV, consts)
        assert t == T.le(T.intlit(16), n)

    def test_sizeof_unknown(self):
        with pytest.raises(SpecParseError):
            parse_term("sizeof(struct nope) ≤ n", ENV, {})

    def test_uninterpreted_function(self):
        t = parse_term("hash(n) % 8", ENV)
        assert t == T.app("mod", T.fn_app("hash", [n], Sort.INT), T.intlit(8))

    def test_unknown_identifier(self):
        with pytest.raises(SpecParseError):
            parse_term("zzz + 1", ENV)

    def test_unbalanced_parens(self):
        with pytest.raises(SpecParseError):
            parse_term("(n + 1", ENV)

    def test_trailing_tokens(self):
        with pytest.raises(SpecParseError):
            parse_term("n + 1 )", ENV)

    def test_conjunction_and_implication(self):
        t = parse_term("n ≤ a ∧ a ≤ n → a = n", ENV)
        assert t == T.implies(T.and_(T.le(n, a), T.le(a, n)), T.eq(a, n))

    def test_membership(self):
        assert parse_term("n ∈ s", ENV) == T.mmember(n, s)

    def test_booleans(self):
        assert parse_term("true", ENV) == T.TRUE
        assert parse_term("false", ENV) == T.FALSE

    def test_sort_error_surfaces(self):
        with pytest.raises(SpecParseError):
            parse_term("s + 1", ENV)  # MSET + INT is ill-sorted
