"""Observational purity of the memoized pure-solver pipeline.

The hash-consed term engine and the MEMO-gated caches (simplify /
linarith / lists / sets / prove) must be invisible: every cached answer
must equal the answer a cache-free run computes.  These properties drive
randomly generated terms (the strategies from ``test_properties``)
through both modes and require agreement — plus structural ``==``/hash
preservation through interning and ``Subst.resolve`` round-trips.
"""

import pickle

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.pure import simplify, simplify_hyp  # noqa: E402
from repro.pure import terms as T  # noqa: E402
from repro.pure.linarith import implies_linear  # noqa: E402
from repro.pure.memo import (cache_enabled, caches_disabled,  # noqa: E402
                             clear_pure_caches, set_cache_enabled)
from repro.pure.solver import PureSolver  # noqa: E402
from repro.pure.terms import Subst, fresh_evar  # noqa: E402

from .test_properties import bool_terms, int_terms  # noqa: E402


@pytest.fixture(autouse=True)
def _caches_on():
    """Each test starts cache-enabled with cold caches and restores the
    ambient state afterwards."""
    previous = set_cache_enabled(True)
    clear_pure_caches()
    yield
    set_cache_enabled(previous)


# ---------------------------------------------------------------------
# memoized == cache-free

@settings(max_examples=80, deadline=None)
@given(t=st.one_of(int_terms, bool_terms))
def test_simplify_agrees_with_cache_free(t):
    cached = simplify(t)
    with caches_disabled():
        reference = simplify(t)
    assert cached == reference
    assert hash(cached) == hash(reference)


@settings(max_examples=60, deadline=None)
@given(t=bool_terms)
def test_simplify_hyp_agrees_with_cache_free(t):
    cached = simplify_hyp(t)
    with caches_disabled():
        reference = simplify_hyp(t)
    assert cached == reference


@settings(max_examples=60, deadline=None)
@given(hyps=st.lists(bool_terms, max_size=3), goal=bool_terms)
def test_implies_linear_agrees_with_cache_free(hyps, goal):
    cached = implies_linear(hyps, goal)
    with caches_disabled():
        reference = implies_linear(hyps, goal)
    assert cached is reference


@settings(max_examples=40, deadline=None)
@given(hyps=st.lists(bool_terms, max_size=2), goal=bool_terms)
def test_prove_agrees_with_cache_free(hyps, goal):
    cached = PureSolver().prove(hyps, goal)
    with caches_disabled():
        reference = PureSolver().prove(hyps, goal)
    assert cached.outcome == reference.outcome
    assert cached.solver == reference.solver


@settings(max_examples=40, deadline=None)
@given(t=bool_terms)
def test_repeat_simplify_is_memoized(t):
    """With the switch on, the second simplify of a compound term is a
    cache hit — it returns the pointer-identical object."""
    first = simplify(t)
    second = simplify(t)
    assert first == second
    if isinstance(t, T.App):
        assert first is second


# ---------------------------------------------------------------------
# interning: == / hash through Subst.resolve round-trips

@settings(max_examples=80, deadline=None)
@given(t=int_terms)
def test_resolve_round_trip_preserves_identity(t):
    ev = fresh_evar(T.Sort.INT, "n")
    s = Subst()
    s.bind_evar(ev, t)
    assert s.resolve(ev) == t
    assert hash(s.resolve(ev)) == hash(t)
    # Resolving a compound containing the evar equals building the
    # compound from the binding directly — interning keeps both routes on
    # the same structural value (and the same object).
    compound = T.add(ev, T.intlit(1))
    expected = T.add(t, T.intlit(1))
    resolved = s.resolve(compound)
    assert resolved == expected
    assert hash(resolved) == hash(expected)
    assert resolved is expected


@settings(max_examples=60, deadline=None)
@given(t=st.one_of(int_terms, bool_terms))
def test_pickle_round_trip_reinterns(t):
    """Un-pickling re-interns: the copy is equal, equi-hashed, and
    pointer-identical to the original."""
    copy = pickle.loads(pickle.dumps(t))
    assert copy == t
    assert hash(copy) == hash(t)
    assert copy is t


def test_fixture_restores_ambient_state():
    assert cache_enabled() is True
