"""Tests for the linear-arithmetic, list, and multiset solvers, and the
PureSolver dispatcher's auto/manual accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pure import Lemma, Outcome, PureSolver, Sort, evaluate, terms as T
from repro.pure.linarith import implies_linear
from repro.pure.lists import list_solver
from repro.pure.sets import multiset_solver

a, b, c, n = T.var("a"), T.var("b"), T.var("c"), T.var("n")
s = T.var("s", Sort.MSET)
tail = T.var("tail", Sort.MSET)
xs = T.var("xs", Sort.LIST)
ys = T.var("ys", Sort.LIST)


class TestLinarith:
    def test_trivial(self):
        assert implies_linear([], T.le(T.intlit(1), T.intlit(2)))

    def test_transitivity(self):
        assert implies_linear([T.le(a, b), T.le(b, c)], T.le(a, c))

    def test_not_provable(self):
        assert not implies_linear([T.le(a, b)], T.le(b, a))

    def test_strict_integer_tightening(self):
        # over ints, a < b implies a + 1 <= b
        assert implies_linear([T.lt(a, b)], T.le(T.add(a, T.intlit(1)), b))

    def test_equality_hypothesis(self):
        assert implies_linear([T.eq(a, T.add(b, T.intlit(2)))],
                              T.lt(b, a))

    def test_equality_goal(self):
        assert implies_linear([T.le(a, b), T.le(b, a)], T.eq(a, b))

    def test_disequality_goal(self):
        assert implies_linear([T.lt(a, b)], T.ne(a, b))

    def test_contradictory_hypotheses(self):
        assert implies_linear([T.lt(a, b), T.lt(b, a)], T.FALSE)

    def test_nat_subtraction_bound(self):
        # with 0 <= n and n <= a:  a - n <= a
        hyps = [T.le(T.intlit(0), n), T.le(n, a)]
        assert implies_linear(hyps, T.le(T.sub(a, n), a))

    def test_needs_nonneg(self):
        # without 0 <= n this is false over ints
        assert not implies_linear([T.le(n, a)], T.le(T.sub(a, n), a))

    def test_scaling(self):
        assert implies_linear([T.le(T.mul(T.intlit(2), a), b)],
                              T.le(a, T.app("div", T.add(b, b), T.intlit(2))))\
            or True  # div is opaque; just ensure no crash

    def test_len_nonneg_axiom(self):
        assert implies_linear([], T.le(T.intlit(0), T.length(xs)))

    def test_msize_nonneg_axiom(self):
        assert implies_linear([], T.le(T.intlit(0), T.msize(s)))

    def test_min_axiom(self):
        assert implies_linear([], T.le(T.app("min", a, b), a))

    def test_max_axiom(self):
        assert implies_linear([], T.le(b, T.app("max", a, b)))

    def test_mod_bounds(self):
        m = T.app("mod", a, T.intlit(8))
        assert implies_linear([], T.lt(m, T.intlit(8)))
        assert implies_linear([], T.le(T.intlit(0), m))

    def test_many_vars(self):
        vs = [T.var(f"x{i}") for i in range(8)]
        hyps = [T.le(vs[i], vs[i + 1]) for i in range(7)]
        assert implies_linear(hyps, T.le(vs[0], vs[7]))

    def test_false_chain_not_provable(self):
        vs = [T.var(f"x{i}") for i in range(8)]
        hyps = [T.le(vs[i], vs[i + 1]) for i in range(7)]
        assert not implies_linear(hyps, T.le(vs[7], vs[0]))


class TestListSolver:
    def test_append_assoc(self):
        zs = T.var("zs", Sort.LIST)
        lhs = T.append(T.append(xs, ys), zs)
        rhs = T.append(xs, T.append(ys, zs))
        assert list_solver([], T.eq(lhs, rhs))

    def test_append_nil(self):
        assert list_solver([], T.eq(T.append(xs, T.nil()), xs))

    def test_rewriting_by_hypothesis(self):
        hyp = T.eq(xs, T.cons(a, ys))
        goal = T.eq(T.length(xs), T.add(T.intlit(1), T.length(ys)))
        assert list_solver([hyp], goal)

    def test_elementwise(self):
        hyps = [T.eq(a, b)]
        goal = T.eq(T.cons(a, xs), T.cons(b, xs))
        assert list_solver(hyps, goal)

    def test_not_provable(self):
        assert not list_solver([], T.eq(T.cons(a, xs), xs))


class TestMultisetSolver:
    def test_freelist_invariant(self):
        # the shape arising in Figure 3's verification
        hyps = [T.eq(s, T.munion(T.msingle(n), tail)), T.mall_ge(tail, n)]
        assert multiset_solver(hyps, T.eq(T.munion(T.msingle(n), tail), s))

    def test_commutativity(self):
        assert multiset_solver([], T.eq(T.munion(s, tail), T.munion(tail, s)))

    def test_nonempty_from_singleton(self):
        hyps = [T.eq(s, T.munion(T.msingle(n), tail))]
        assert multiset_solver(hyps, T.ne(s, T.mempty()))

    def test_all_ge_from_parts(self):
        hyps = [T.mall_ge(tail, n), T.le(a, n)]
        goal = T.mall_ge(T.munion(T.msingle(n), tail), a)
        assert multiset_solver(hyps, goal)

    def test_all_ge_not_provable(self):
        assert not multiset_solver([T.mall_ge(tail, n)],
                                   T.mall_ge(tail, T.add(n, T.intlit(1))))

    def test_member_singleton(self):
        assert multiset_solver([], T.mmember(n, T.munion(tail, T.msingle(n))))

    def test_elementwise_matching(self):
        hyps = [T.eq(a, b)]
        goal = T.eq(T.munion(T.msingle(a), s), T.munion(T.msingle(b), s))
        assert multiset_solver(hyps, goal)

    def test_saturation_through_equation_chain(self):
        s2 = T.var("s2", Sort.MSET)
        hyps = [T.eq(s, T.munion(T.msingle(n), s2)),
                T.eq(s2, T.munion(T.msingle(a), tail))]
        goal = T.mmember(a, s)
        assert multiset_solver(hyps, goal)


class TestPureSolverDispatch:
    def test_default_counts_as_auto(self):
        solver = PureSolver()
        res = solver.prove([T.le(T.intlit(0), n), T.le(n, a)],
                           T.le(T.sub(a, n), a))
        assert res.outcome is Outcome.DEFAULT

    def test_named_solver_counts_as_manual(self):
        solver = PureSolver(tactics=["multiset_solver"])
        # Bound propagation over an opaque multiset part needs the multiset
        # solver; the default solver does not know the theory of mall_ge.
        hyps = [T.mall_ge(tail, n), T.le(a, n)]
        res = solver.prove(hyps,
                           T.mall_ge(T.munion(T.msingle(n), tail), a))
        assert res.outcome is Outcome.NAMED
        assert res.solver == "multiset_solver"

    def test_failure(self):
        solver = PureSolver()
        assert solver.prove([], T.le(a, b)).outcome is Outcome.FAILED

    def test_unknown_tactic_rejected(self):
        with pytest.raises(ValueError):
            PureSolver(tactics=["frobnicate_solver"])

    def test_implication_goal(self):
        solver = PureSolver()
        res = solver.prove([], T.implies(T.lt(a, b), T.le(a, b)))
        assert res.outcome is Outcome.DEFAULT

    def test_conjunction_goal(self):
        solver = PureSolver()
        goal = T.and_(T.le(a, a), T.le(T.intlit(0), T.length(xs)))
        assert solver.prove([], goal).outcome is Outcome.DEFAULT

    def test_bool_eq_goal(self):
        solver = PureSolver()
        goal = T.eq(T.le(a, b), T.not_(T.lt(b, a)))
        assert solver.prove([], goal).outcome is Outcome.DEFAULT

    def test_ite_goal(self):
        solver = PureSolver()
        goal = T.le(T.ite(T.le(n, a), T.sub(a, n), a), a)
        res = solver.prove([T.le(T.intlit(0), n), T.le(T.intlit(0), a)], goal)
        assert res.outcome is Outcome.DEFAULT

    def test_lemma_counts_as_manual(self):
        srt = T.fn_app("is_bst", [T.var("t0")], Sort.BOOL)
        lemma = Lemma("bst_empty", (T.var("t0"),), (),
                      T.fn_app("is_bst", [T.var("t0")], Sort.BOOL))
        solver = PureSolver(lemmas=[lemma])
        res = solver.prove([], T.fn_app("is_bst", [a], Sort.BOOL))
        assert res.outcome is Outcome.LEMMA

    def test_false_hypothesis_proves_anything(self):
        solver = PureSolver()
        res = solver.prove([T.FALSE], T.le(b, a))
        assert res.outcome is Outcome.DEFAULT

    def test_contradictory_arith_hypotheses_prove_anything(self):
        solver = PureSolver()
        res = solver.prove([T.lt(a, b), T.lt(b, a)], T.eq(s, T.mempty()))
        assert res.outcome is Outcome.DEFAULT


# ----------------------------------------------------------------------
# Property: the default solver is sound — anything it proves holds under
# random ground instantiation of the hypotheses.
# ----------------------------------------------------------------------

@given(av=st.integers(-30, 30), bv=st.integers(-30, 30),
       nv=st.integers(0, 30))
@settings(max_examples=100, deadline=None)
def test_linarith_soundness_sample(av, bv, nv):
    hyps = [T.le(T.intlit(0), n), T.le(n, a), T.lt(a, b)]
    goals = [T.le(T.sub(a, n), a), T.le(a, b), T.ne(a, b),
             T.le(n, b), T.lt(T.sub(a, n), b)]
    env = {"a": av, "b": bv, "n": nv}
    if all(evaluate(h, env) for h in hyps):
        for g in goals:
            if implies_linear(hyps, g):
                assert evaluate(g, env), f"unsound: {g} under {env}"
