"""Ground evaluation and simplification tests, including the property that
simplification preserves semantics (hypothesis-based)."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.pure import Sort, evaluate, simplify, simplify_hyp, terms as T
from repro.pure.eval import EvalError


class TestEvaluate:
    def test_arith(self):
        t = T.add(T.var("a"), T.mul(T.intlit(2), T.var("b")))
        assert evaluate(t, {"a": 3, "b": 4}) == 11

    def test_div_truncates_toward_zero(self):
        t = T.app("div", T.var("a"), T.var("b"))
        assert evaluate(t, {"a": 7, "b": 2}) == 3
        assert evaluate(t, {"a": -7, "b": 2}) == -3

    def test_div_by_zero(self):
        with pytest.raises(EvalError):
            evaluate(T.app("div", T.intlit(1), T.var("b")), {"b": 0})

    def test_unbound_var(self):
        with pytest.raises(EvalError):
            evaluate(T.var("missing"), {})

    def test_mset_ops(self):
        s = T.munion(T.msingle(T.intlit(1)), T.msingle(T.intlit(1)))
        assert evaluate(s, {}) == Counter({1: 2})
        assert evaluate(T.msize(s), {}) == 2
        assert evaluate(T.mmember(T.intlit(1), s), {}) is True
        assert evaluate(T.mall_ge(s, T.intlit(1)), {}) is True
        assert evaluate(T.mall_ge(s, T.intlit(2)), {}) is False

    def test_list_ops(self):
        l = T.cons(T.intlit(1), T.cons(T.intlit(2), T.nil()))
        assert evaluate(l, {}) == (1, 2)
        assert evaluate(T.length(l), {}) == 2
        assert evaluate(T.append(l, l), {}) == (1, 2, 1, 2)
        assert evaluate(T.app("head", l), {}) == 1
        assert evaluate(T.app("index", l, T.intlit(1)), {}) == 2

    def test_loc_offset(self):
        t = T.loc_offset(T.var("p", Sort.LOC), T.intlit(8))
        assert evaluate(t, {"p": (1, 4)}) == (1, 12)

    def test_uninterpreted_fn(self):
        t = T.fn_app("hash", [T.var("x")], Sort.INT)
        assert evaluate(t, {"x": 10, "fn:hash": lambda x: x * 3}) == 30


class TestSimplify:
    def test_msize_distributes(self):
        s = T.var("s", Sort.MSET)
        t = T.msize(T.munion(T.msingle(T.var("n")), s))
        assert simplify(t) == T.add(T.intlit(1), T.msize(s))

    def test_len_distributes(self):
        l = T.var("l", Sort.LIST)
        t = T.length(T.cons(T.var("x"), T.append(l, T.nil())))
        assert simplify(t) == T.add(T.intlit(1), T.length(l))

    def test_cons_eq_decomposes(self):
        x, y = T.var("x"), T.var("y")
        l = T.var("l", Sort.LIST)
        t = simplify(T.eq(T.cons(x, l), T.cons(y, l)))
        assert t == T.eq(x, y)

    def test_cons_nil_absurd(self):
        t = simplify(T.eq(T.cons(T.var("x"), T.nil()), T.nil()))
        assert t == T.FALSE

    def test_mall_ge_decomposes(self):
        s = T.var("s", Sort.MSET)
        n, k = T.var("n"), T.var("k")
        t = simplify(T.mall_ge(T.munion(T.msingle(k), s), n))
        assert t == T.and_(T.le(n, k), T.mall_ge(s, n))

    def test_mset_eq_cancellation(self):
        s = T.var("s", Sort.MSET)
        n = T.var("n")
        t = simplify(T.eq(T.munion(T.msingle(n), s), T.munion(s, T.msingle(n))))
        assert t == T.TRUE

    def test_mset_singleton_eq(self):
        t = simplify(T.eq(T.msingle(T.var("a")), T.msingle(T.var("b"))))
        assert t == T.eq(T.var("a"), T.var("b"))

    def test_mset_nonempty_vs_empty_absurd(self):
        t = simplify(T.eq(T.msingle(T.var("a")), T.mempty()))
        assert t == T.FALSE

    def test_idempotent(self):
        s = T.var("s", Sort.MSET)
        t = T.msize(T.munion(T.msingle(T.var("n")), s))
        once = simplify(t)
        assert simplify(once) == once


class TestSimplifyHyp:
    def test_conjunction_splits(self):
        p, q = T.var("p", Sort.BOOL), T.var("q", Sort.BOOL)
        assert simplify_hyp(T.and_(p, q)) == [p, q]

    def test_true_vanishes(self):
        assert simplify_hyp(T.TRUE) == []

    def test_append_nil_rule(self):
        xs, ys = T.var("xs", Sort.LIST), T.var("ys", Sort.LIST)
        out = simplify_hyp(T.eq(T.append(xs, ys), T.nil()))
        assert T.eq(xs, T.nil()) in out and T.eq(ys, T.nil()) in out

    def test_munion_empty_rule(self):
        a, b = T.var("a", Sort.MSET), T.var("b", Sort.MSET)
        out = simplify_hyp(T.eq(T.munion(a, b), T.mempty()))
        assert T.eq(a, T.mempty()) in out and T.eq(b, T.mempty()) in out


# ----------------------------------------------------------------------
# Property-based: simplification is semantics-preserving.
# ----------------------------------------------------------------------

_INT_VARS = ["a", "b", "c"]


def int_terms(depth=3):
    leaf = st.one_of(
        st.integers(-20, 20).map(T.intlit),
        st.sampled_from(_INT_VARS).map(T.var),
    )
    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: T.add(*p)),
            st.tuples(children, children).map(lambda p: T.sub(*p)),
            st.tuples(children, children).map(lambda p: T.mul(*p)),
            children.map(T.neg),
            st.tuples(children, children).map(lambda p: T.app("min", *p)),
            st.tuples(children, children).map(lambda p: T.app("max", *p)),
        )
    return st.recursive(leaf, extend, max_leaves=10)


def bool_terms():
    cmp_ops = [T.le, T.lt, T.eq, T.ne]
    base = st.tuples(st.sampled_from(cmp_ops), int_terms(), int_terms()) \
        .map(lambda t: t[0](t[1], t[2]))
    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: T.and_(*p)),
            st.tuples(children, children).map(lambda p: T.or_(*p)),
            children.map(T.not_),
            st.tuples(children, children).map(lambda p: T.implies(*p)),
        )
    return st.recursive(base, extend, max_leaves=8)


@given(t=int_terms(), a=st.integers(-50, 50), b=st.integers(-50, 50),
       c=st.integers(-50, 50))
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_int_semantics(t, a, b, c):
    env = {"a": a, "b": b, "c": c}
    assert evaluate(simplify(t), env) == evaluate(t, env)


@given(t=bool_terms(), a=st.integers(-50, 50), b=st.integers(-50, 50),
       c=st.integers(-50, 50))
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_bool_semantics(t, a, b, c):
    env = {"a": a, "b": b, "c": c}
    assert evaluate(simplify(t), env) == evaluate(t, env)


@given(t=bool_terms(), a=st.integers(-50, 50), b=st.integers(-50, 50),
       c=st.integers(-50, 50))
@settings(max_examples=100, deadline=None)
def test_simplify_hyp_preserves_conjunction_semantics(t, a, b, c):
    env = {"a": a, "b": b, "c": c}
    parts = simplify_hyp(t)
    assert all(evaluate(p, env) for p in parts) == bool(evaluate(t, env))
