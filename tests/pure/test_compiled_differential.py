"""Differential tests: compiled hot paths == interpreted reference.

``RC_COMPILE`` (repro.pure.compiled) swaps the hot loops of the pure
stack — ``simplify``'s rewrite walk, ``simplify_hyp``'s hypothesis
decomposition, and the linear-arithmetic entailment check — for
compiled forms (per-operator closures stamped onto interned nodes,
integer-matrix Fourier–Motzkin).  The compiled paths promise to be
*observationally identical* to the interpreted ones; these tests check
that promise directly by running both modes on the same random inputs
and comparing results exactly.

Each comparison flips the switch via :func:`set_compile_enabled`, which
flushes the pure caches on every transition, so a warm memo entry from
one mode can never mask a divergence in the other.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.pure import simplify, simplify_hyp  # noqa: E402
from repro.pure import terms as T  # noqa: E402
from repro.pure.compiled import (COMPILE,  # noqa: E402
                                 set_compile_enabled)
from repro.pure.linarith import implies_linear  # noqa: E402

VARS = ("a", "b", "c")

# ---------------------------------------------------------------------
# term strategies (same shape as test_properties.py: small integer
# arithmetic under comparisons under a boolean skeleton)

_leaf = st.one_of(
    st.integers(-4, 4).map(T.intlit),
    st.sampled_from(VARS).map(T.var),
)


def _int_nodes(child):
    return st.one_of(
        st.tuples(child, child).map(lambda ab: T.add(*ab)),
        st.tuples(child, child).map(lambda ab: T.sub(*ab)),
        st.tuples(st.integers(-3, 3).map(T.intlit), child)
          .map(lambda ab: T.mul(*ab)),
        child.map(T.neg),
    )


int_terms = st.recursive(_leaf, _int_nodes, max_leaves=6)


def _cmp(pair_to_term):
    return st.tuples(int_terms, int_terms).map(lambda ab: pair_to_term(*ab))


_atoms = st.one_of(_cmp(T.le), _cmp(T.lt), _cmp(T.eq))


def _bool_nodes(child):
    return st.one_of(
        st.tuples(child, child).map(lambda ab: T.and_(*ab)),
        st.tuples(child, child).map(lambda ab: T.or_(*ab)),
        child.map(T.not_),
    )


bool_terms = st.recursive(_atoms, _bool_nodes, max_leaves=4)


def _both_modes(fn):
    """Evaluate ``fn`` on the interpreted and the compiled path."""
    prev = COMPILE.enabled
    try:
        set_compile_enabled(False)
        interp = fn()
        set_compile_enabled(True)
        hot = fn()
    finally:
        set_compile_enabled(prev)
    return interp, hot


# ---------------------------------------------------------------------
# the three compiled entry points

@settings(max_examples=80, deadline=None)
@given(t=st.one_of(int_terms, bool_terms))
def test_simplify_matches_interpreter(t):
    interp, hot = _both_modes(lambda: simplify(t))
    assert interp == hot, f"simplify({t}): {interp} != {hot}"


@settings(max_examples=60, deadline=None)
@given(phi=bool_terms)
def test_simplify_hyp_matches_interpreter(phi):
    interp, hot = _both_modes(lambda: simplify_hyp(phi))
    assert interp == hot, f"simplify_hyp({phi}): {interp} != {hot}"


@settings(max_examples=60, deadline=None)
@given(hyps=st.lists(bool_terms, max_size=3), goal=bool_terms)
def test_implies_linear_matches_interpreter(hyps, goal):
    """Entailment verdicts must agree — including every "don't know"."""
    interp, hot = _both_modes(lambda: implies_linear(hyps, goal))
    assert interp == hot, \
        f"implies_linear({hyps} |= {goal}): {interp} != {hot}"


@settings(max_examples=40, deadline=None)
@given(t=st.one_of(int_terms, bool_terms))
def test_compiled_simplify_is_idempotent(t):
    """The node-stamped normal form is a fixpoint, like the reference."""
    prev = COMPILE.enabled
    try:
        set_compile_enabled(True)
        s = simplify(t)
        assert simplify(s) == s
    finally:
        set_compile_enabled(prev)
