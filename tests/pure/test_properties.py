"""Property-based tests for the pure solvers.

Both properties are *soundness against brute force*: whatever the
Fourier–Motzkin entailment checker claims, and whatever the simplifier
rewrites, must agree with directly evaluating the terms over every
assignment of a small domain.  Completeness is deliberately not tested —
the solver is allowed to say "don't know" (return ``False``), never
allowed to claim a false entailment.
"""

import itertools

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.pure import evaluate, simplify, simplify_hyp  # noqa: E402
from repro.pure import terms as T  # noqa: E402
from repro.pure.eval import EvalError  # noqa: E402
from repro.pure.linarith import implies_linear  # noqa: E402

VARS = ("a", "b", "c")
DOMAIN = range(-4, 5)

# ---------------------------------------------------------------------
# term strategies

_leaf = st.one_of(
    st.integers(-4, 4).map(T.intlit),
    st.sampled_from(VARS).map(T.var),
)


def _int_nodes(child):
    return st.one_of(
        st.tuples(child, child).map(lambda ab: T.add(*ab)),
        st.tuples(child, child).map(lambda ab: T.sub(*ab)),
        st.tuples(st.integers(-3, 3).map(T.intlit), child)
          .map(lambda ab: T.mul(*ab)),
        child.map(T.neg),
    )


int_terms = st.recursive(_leaf, _int_nodes, max_leaves=6)


def _cmp(pair_to_term):
    return st.tuples(int_terms, int_terms).map(lambda ab: pair_to_term(*ab))


_atoms = st.one_of(_cmp(T.le), _cmp(T.lt), _cmp(T.eq))


def _bool_nodes(child):
    return st.one_of(
        st.tuples(child, child).map(lambda ab: T.and_(*ab)),
        st.tuples(child, child).map(lambda ab: T.or_(*ab)),
        child.map(T.not_),
    )


bool_terms = st.recursive(_atoms, _bool_nodes, max_leaves=4)


def _assignments(*terms):
    names = sorted({v.name for t in terms for v in t.free_vars()})
    for values in itertools.product(DOMAIN, repeat=len(names)):
        yield dict(zip(names, values))


# ---------------------------------------------------------------------
# linarith soundness

@settings(max_examples=60, deadline=None)
@given(hyps=st.lists(bool_terms, max_size=3), goal=bool_terms)
def test_implies_linear_is_sound(hyps, goal):
    """A claimed entailment must hold in every small-domain model."""
    if not implies_linear(hyps, goal):
        return  # "don't know" is always allowed
    for env in _assignments(goal, *hyps):
        try:
            if not all(evaluate(h, env) for h in hyps):
                continue
            assert evaluate(goal, env), \
                f"claimed {hyps} |= {goal}, refuted by {env}"
        except EvalError:
            continue


@settings(max_examples=30, deadline=None)
@given(goal=bool_terms)
def test_implies_linear_from_nothing_means_valid(goal):
    if not implies_linear([], goal):
        return
    for env in _assignments(goal):
        try:
            assert evaluate(goal, env), f"claimed valid: {goal}, env {env}"
        except EvalError:
            continue


# ---------------------------------------------------------------------
# simplify soundness

@settings(max_examples=80, deadline=None)
@given(t=st.one_of(int_terms, bool_terms))
def test_simplify_preserves_semantics(t):
    s = simplify(t)
    for env in _assignments(t, s):
        try:
            want = evaluate(t, env)
        except EvalError:
            continue
        assert evaluate(s, env) == want, f"{t} -> {s} differs at {env}"


@settings(max_examples=40, deadline=None)
@given(t=st.one_of(int_terms, bool_terms))
def test_simplify_is_idempotent(t):
    s = simplify(t)
    assert simplify(s) == s


@settings(max_examples=40, deadline=None)
@given(phi=bool_terms)
def test_simplify_hyp_is_sound(phi):
    """Every fact extracted from a hypothesis must be implied by it."""
    facts = simplify_hyp(phi)
    for env in _assignments(phi, *facts):
        try:
            if not evaluate(phi, env):
                continue
            for f in facts:
                assert evaluate(f, env), f"{phi} -/-> {f} at {env}"
        except EvalError:
            continue
