"""Unit tests for the refinement term language."""

import pytest

from repro.pure import Sort, Subst, TermError, fresh_evar, terms as T


class TestConstruction:
    def test_literal_sorts(self):
        assert T.intlit(3).sort is Sort.INT
        assert T.TRUE.sort is Sort.BOOL

    def test_add_folds_constants(self):
        assert T.add(T.intlit(2), T.intlit(3)) == T.intlit(5)

    def test_add_flattens(self):
        a, b = T.var("a"), T.var("b")
        t = T.add(T.add(a, b), T.intlit(1), T.intlit(2))
        assert isinstance(t, T.App) and t.op == "add"
        assert T.intlit(3) in t.args and a in t.args and b in t.args

    def test_add_identity(self):
        a = T.var("a")
        assert T.add(a, T.intlit(0)) == a

    def test_mul_zero_annihilates(self):
        assert T.mul(T.var("a"), T.intlit(0)) == T.intlit(0)

    def test_sub_zero(self):
        a = T.var("a")
        assert T.sub(a, T.intlit(0)) == a

    def test_comparison_folding(self):
        assert T.le(T.intlit(1), T.intlit(2)) == T.TRUE
        assert T.lt(T.intlit(2), T.intlit(2)) == T.FALSE
        assert T.eq(T.intlit(5), T.intlit(5)) == T.TRUE

    def test_eq_reflexive_without_evars(self):
        a = T.var("a")
        assert T.eq(a, a) == T.TRUE

    def test_eq_not_folded_with_evars(self):
        ev = fresh_evar(Sort.INT)
        t = T.eq(ev, ev)
        assert t != T.TRUE  # evars must not be eagerly identified

    def test_and_simplification(self):
        p = T.var("p", Sort.BOOL)
        assert T.and_(p, T.TRUE) == p
        assert T.and_(p, T.FALSE) == T.FALSE
        assert T.or_(p, T.TRUE) == T.TRUE
        assert T.or_(p, T.FALSE) == p

    def test_double_negation(self):
        p = T.var("p", Sort.BOOL)
        assert T.not_(T.not_(p)) == p

    def test_ite_concrete_condition(self):
        a, b = T.var("a"), T.var("b")
        assert T.ite(T.TRUE, a, b) == a
        assert T.ite(T.FALSE, a, b) == b
        assert T.ite(T.var("p", Sort.BOOL), a, a) == a

    def test_ite_branch_sort_mismatch(self):
        with pytest.raises(TermError):
            T.ite(T.TRUE, T.intlit(1), T.var("s", Sort.MSET))

    def test_sort_checking(self):
        with pytest.raises(TermError):
            T.add(T.intlit(1), T.TRUE)
        with pytest.raises(TermError):
            T.eq(T.intlit(1), T.var("s", Sort.MSET))

    def test_loc_offset_zero(self):
        p = T.var("p", Sort.LOC)
        assert T.loc_offset(p, T.intlit(0)) == p

    def test_loc_offset_collapses(self):
        p = T.var("p", Sort.LOC)
        t = T.loc_offset(T.loc_offset(p, T.intlit(4)), T.intlit(3))
        assert t == T.loc_offset(p, T.intlit(7))

    def test_munion_empty_unit(self):
        s = T.var("s", Sort.MSET)
        assert T.munion(s, T.mempty()) == s

    def test_unknown_op_rejected(self):
        with pytest.raises(TermError):
            T.app("frobnicate", T.intlit(1))


class TestTraversal:
    def test_free_vars(self):
        a, b = T.var("a"), T.var("b")
        t = T.add(a, T.mul(b, T.intlit(2)))
        assert t.free_vars() == {a, b}

    def test_evars(self):
        ev = fresh_evar(Sort.INT)
        t = T.add(T.var("a"), ev)
        assert t.evars() == {ev}
        assert t.has_evars()

    def test_no_evars(self):
        assert not T.add(T.var("a"), T.intlit(1)).has_evars()


class TestSubst:
    def test_bind_and_resolve(self):
        s = Subst()
        ev = fresh_evar(Sort.INT)
        s.bind_evar(ev, T.intlit(7))
        assert s.resolve(T.add(ev, T.intlit(1))) == T.intlit(8)

    def test_double_bind_rejected(self):
        s = Subst()
        ev = fresh_evar(Sort.INT)
        s.bind_evar(ev, T.intlit(1))
        with pytest.raises(TermError):
            s.bind_evar(ev, T.intlit(2))

    def test_occurs_check(self):
        s = Subst()
        ev = fresh_evar(Sort.INT)
        with pytest.raises(TermError):
            s.bind_evar(ev, T.add(ev, T.intlit(1)))

    def test_chained_resolution(self):
        s = Subst()
        e1, e2 = fresh_evar(Sort.INT), fresh_evar(Sort.INT)
        s.bind_evar(e1, e2)
        s.bind_evar(e2, T.intlit(3))
        assert s.resolve(e1) == T.intlit(3)

    def test_sort_mismatch_rejected(self):
        s = Subst()
        ev = fresh_evar(Sort.INT)
        with pytest.raises(TermError):
            s.bind_evar(ev, T.TRUE)

    def test_subst_vars(self):
        a = T.var("a")
        t = T.subst_vars(T.add(a, T.intlit(1)), {a: T.intlit(4)})
        assert t == T.intlit(5)

    def test_subst_vars_recanonicalises(self):
        a, b = T.var("a"), T.var("b")
        t = T.subst_vars(T.le(a, b), {a: T.intlit(1), b: T.intlit(2)})
        assert t == T.TRUE
