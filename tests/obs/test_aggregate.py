"""Per-rule cost accounting: stack replay, determinism, merges."""

import pytest

from repro.obs import (AGGREGATE_SCHEMA_VERSION, SOLVER_PREFIX, CostEntry,
                       RuleCostMap, costs_of_outcomes, render_top_rules)
from repro.trace.signature import RULE_PREFIX
from repro.trace.tracer import FunctionTrace, TraceEvent, UnitTrace


def span(seq, cat, name, depth, dur, **args):
    return TraceEvent(seq, TraceEvent.SPAN, cat, name, depth,
                      ts=0.0, dur=dur, args=args)


def synthetic_trace():
    """One rule span (0.10s) containing two solver spans (0.04s + 0.02s)
    and one unaccounted frontend span (0.01s), then a sibling rule."""
    events = [
        span(0, "rule", "owned_ptr", 0, 0.10, key="G:ptr"),
        span(1, "solver", "prove", 1, 0.04, outcome="auto", solver="arith"),
        span(2, "solver", "prove", 1, 0.02, outcome="manual"),
        span(3, "frontend", "lookup", 1, 0.01),
        span(4, "rule", "owned_ptr", 0, 0.05, key="G:ptr"),
        TraceEvent(5, TraceEvent.INSTANT, "rule", "noise", 0, ts=0.0),
    ]
    return UnitTrace("unit", [FunctionTrace("unit", "f", events)])


def test_stack_replay_totals_and_self():
    costs = RuleCostMap()
    costs.add_unit_trace(synthetic_trace())
    rule = costs.entries[f"{RULE_PREFIX}G:ptr:owned_ptr"]
    assert rule.count == 2
    assert rule.total_s == pytest.approx(0.15)
    # Self time subtracts *all* child spans, accounted or not.
    assert rule.self_s == pytest.approx(0.15 - 0.04 - 0.02 - 0.01)
    assert rule.max_s == pytest.approx(0.10)
    auto = costs.entries[f"{SOLVER_PREFIX}auto:arith"]
    assert (auto.count, auto.total_s) == (1, pytest.approx(0.04))
    assert f"{SOLVER_PREFIX}manual" in costs.entries
    # The frontend span and the instant event produce no keys.
    assert all(k.startswith((RULE_PREFIX, SOLVER_PREFIX))
               for k in costs.entries)


def test_rules_tactics_partition():
    costs = RuleCostMap()
    costs.add_unit_trace(synthetic_trace())
    assert set(costs.rules()) | set(costs.tactics()) == set(costs.entries)
    assert not (set(costs.rules()) & set(costs.tactics()))


def test_none_trace_is_noop():
    costs = RuleCostMap()
    costs.add_unit_trace(None)
    assert costs.entries == {}


def test_counts_schedule_independent(study_path):
    """The determinism contract: serial and jobs=2 runs hit the same keys
    the same number of times (wall fields may differ)."""
    from repro.frontend import verify_file
    serial = costs_of_outcomes(
        [verify_file(study_path("mpool"), trace=True, jobs=1)])
    parallel = costs_of_outcomes(
        [verify_file(study_path("mpool"), trace=True, jobs=2)])
    assert serial.entries.keys() == parallel.entries.keys()
    assert {k: v.count for k, v in serial.entries.items()} \
        == {k: v.count for k, v in parallel.entries.items()}
    assert any(k.startswith(RULE_PREFIX) for k in serial.entries)


def test_merge_of_per_unit_maps_equals_single_map(study_path):
    """Associativity: folding per-unit maps one by one gives the same
    totals as streaming every unit into one map."""
    from repro.frontend import verify_files
    outcomes = list(verify_files([study_path("mpool"),
                                  study_path("binary_search")],
                                 trace=True).values())
    single = costs_of_outcomes(outcomes)
    folded = RuleCostMap()
    for out in outcomes:
        per_unit = RuleCostMap()
        per_unit.add_unit_trace(out.trace)
        folded.merge(per_unit)
    assert folded.entries.keys() == single.entries.keys()
    for key, entry in single.entries.items():
        other = folded.entries[key]
        assert other.count == entry.count
        assert other.total_s == pytest.approx(entry.total_s)
        assert other.self_s == pytest.approx(entry.self_s)
        assert other.max_s == pytest.approx(entry.max_s)


def test_add_counts_iterable_and_mapping():
    a, b = RuleCostMap(), RuleCostMap()
    keys = [f"{RULE_PREFIX}G:int:int_lit", f"{RULE_PREFIX}G:int:int_lit",
            f"{SOLVER_PREFIX}auto", "coverage:unrelated"]
    a.add_counts(keys)
    b.add_counts({f"{RULE_PREFIX}G:int:int_lit": 2,
                  f"{SOLVER_PREFIX}auto": 1,
                  "coverage:unrelated": 9})
    assert {k: v.count for k, v in a.entries.items()} \
        == {k: v.count for k, v in b.entries.items()} \
        == {f"{RULE_PREFIX}G:int:int_lit": 2, f"{SOLVER_PREFIX}auto": 1}
    # Count-only entries carry no wall columns.
    assert all(v.total_s == 0.0 for v in a.entries.values())


def test_round_trip_and_version_check():
    costs = RuleCostMap()
    costs.add_unit_trace(synthetic_trace())
    data = costs.to_dict()
    assert data["schema_version"] == AGGREGATE_SCHEMA_VERSION
    again = RuleCostMap.from_dict(data)
    assert again.to_dict() == data
    data["schema_version"] = AGGREGATE_SCHEMA_VERSION + 1
    with pytest.raises(ValueError):
        RuleCostMap.from_dict(data)


def test_top_orders_by_total_then_key():
    costs = RuleCostMap()
    costs.entries[f"{RULE_PREFIX}b:slow"] = CostEntry(1, 2.0, 2.0, 2.0)
    costs.entries[f"{RULE_PREFIX}a:fast"] = CostEntry(9, 0.5, 0.5, 0.5)
    costs.entries[f"{RULE_PREFIX}c:tie"] = CostEntry(1, 0.5, 0.5, 0.5)
    costs.entries[f"{SOLVER_PREFIX}auto"] = CostEntry(1, 9.0, 9.0, 9.0)
    top = costs.top(10)
    assert [k for k, _ in top] == [f"{RULE_PREFIX}b:slow",
                                   f"{RULE_PREFIX}a:fast",
                                   f"{RULE_PREFIX}c:tie"]
    assert costs.top(1)[0][0] == f"{RULE_PREFIX}b:slow"


def test_top_falls_back_to_count_for_count_only_maps():
    costs = RuleCostMap()
    costs.add_counts({f"{RULE_PREFIX}a:rare": 1, f"{RULE_PREFIX}b:hot": 7})
    assert costs.top(1)[0][0] == f"{RULE_PREFIX}b:hot"


def test_render_top_rules_timed_and_count_only():
    timed = RuleCostMap()
    timed.add_unit_trace(synthetic_trace())
    table = render_top_rules(timed)
    assert "owned_ptr" in table and "ms" in table
    count_only = RuleCostMap()
    count_only.add_counts({f"{RULE_PREFIX}a:rule": 3})
    table = render_top_rules(count_only)
    assert "3" in table and "-" in table and "ms" not in table
    assert render_top_rules(RuleCostMap()) == "(no entries)"
