"""Shared helpers for the observatory tests."""

import pytest

from repro.report import casestudies_dir


@pytest.fixture
def study_path():
    """Resolve a case-study stem to its annotated C file."""
    return lambda stem: casestudies_dir() / f"{stem}.c"
