"""The run ledger: atomic appends, tolerant reads, env gating."""

import json
import multiprocessing

import pytest

from repro.driver.metrics import DriverMetrics
from repro.obs import (LEDGER_SCHEMA_VERSION, append_record, build_record,
                       read_ledger, record_run)
from repro.obs.ledger import ledger_env_path


def make_metrics(wall_s=0.1, hits=3, misses=1):
    m = DriverMetrics(study="unit", jobs=1, cache_enabled=True,
                      cache_hits=hits, cache_misses=misses, wall_s=wall_s)
    m.add_function("f", True, "miss", wall_s, wall_s / 2,
                   {"solver_calls": 10, "rule_applications": 40},
                   solver_cache_hits=4)
    return m


def test_build_record_shape():
    rec = build_record("verify", wall_s=0.5, jobs=2,
                       metrics=[make_metrics()], suite=["unit"],
                       extra={"note": 1})
    assert rec["ledger_version"] == LEDGER_SCHEMA_VERSION
    assert rec["kind"] == "verify"
    assert rec["jobs"] == 2
    assert rec["wall_s"] == 0.5
    assert rec["suite"] == ["unit"]
    assert rec["functions"] == {"unit:f": 0.1}
    assert set(rec["cache_effectiveness"]) == {
        "result_cache", "solver_memo", "dispatch_table",
        "elaboration_memo", "depgraph"}
    assert rec["cache_effectiveness"]["result_cache"]["ratio"] == 0.75
    assert rec["env"].keys() == {"RC_TRACE", "RC_COMPILE", "RC_PURE_CACHE"}
    assert set(rec["config"]) >= {"compile", "pure_cache"}
    assert rec["extra"] == {"note": 1}
    json.dumps(rec)  # must be JSON-clean


def test_build_record_config_extra_lands_in_config():
    rec = build_record("verify", config_extra={"result_cache": True,
                                               "incremental": False})
    assert rec["config"]["result_cache"] is True
    assert rec["config"]["incremental"] is False


def test_append_and_read_round_trip(tmp_path):
    path = tmp_path / "ledger.jsonl"
    for i in range(3):
        assert append_record(path, build_record("verify", wall_s=0.1 * i))
    view = read_ledger(path)
    assert len(view.records) == 3
    assert view.corrupt_lines == 0
    assert view.alien_versions == 0
    assert [r["wall_s"] for r in view.records] == [0.0, 0.1, 0.2]


def test_read_missing_file_is_empty():
    view = read_ledger("/nonexistent/ledger.jsonl")
    assert view.records == [] and view.corrupt_lines == 0


def test_truncated_last_line_is_skipped(tmp_path):
    """A crashed writer leaves a torn last line; reads must keep every
    complete record and count the torn one."""
    path = tmp_path / "ledger.jsonl"
    append_record(path, build_record("verify", wall_s=1.0))
    append_record(path, build_record("verify", wall_s=2.0))
    full = path.read_bytes()
    # Re-append the first line cut off mid-JSON, no trailing newline.
    first_line = full.split(b"\n")[0]
    with open(path, "ab") as fh:
        fh.write(first_line[:len(first_line) // 2])
    view = read_ledger(path)
    assert [r["wall_s"] for r in view.records] == [1.0, 2.0]
    assert view.corrupt_lines == 1


def test_binary_garbage_is_skipped(tmp_path):
    path = tmp_path / "ledger.jsonl"
    append_record(path, build_record("verify"))
    with open(path, "ab") as fh:
        fh.write(b"\x00\xff\xfe not json at all\n")
        fh.write(b'{"also": "not a ledger record"}\n')
    append_record(path, build_record("verify"))
    view = read_ledger(path)
    assert len(view.records) == 2
    # The well-formed-but-versionless dict counts as alien, the binary
    # garbage as corrupt.
    assert view.corrupt_lines == 1
    assert view.alien_versions == 1


def test_version_mismatch_is_counted_not_raised(tmp_path):
    path = tmp_path / "ledger.jsonl"
    append_record(path, build_record("verify"))
    future = build_record("verify")
    future["ledger_version"] = LEDGER_SCHEMA_VERSION + 99
    append_record(path, future)
    view = read_ledger(path)
    assert len(view.records) == 1
    assert view.alien_versions == 1


def _appender(path, worker, count):
    for i in range(count):
        append_record(path, build_record(
            "verify", wall_s=worker + i / 1000.0,
            extra={"worker": worker, "i": i}))


def test_concurrent_appenders_never_tear(tmp_path):
    """Several processes appending at once: every record must read back
    intact (O_APPEND + single-write atomicity)."""
    path = tmp_path / "ledger.jsonl"
    workers, per_worker = 4, 25
    procs = [multiprocessing.Process(target=_appender,
                                     args=(path, w, per_worker))
             for w in range(workers)]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    assert all(p.exitcode == 0 for p in procs)
    view = read_ledger(path)
    assert view.corrupt_lines == 0
    assert len(view.records) == workers * per_worker
    seen = {(r["extra"]["worker"], r["extra"]["i"])
            for r in view.records}
    assert len(seen) == workers * per_worker


def test_append_failure_returns_false(tmp_path):
    target = tmp_path / "file"
    target.write_text("")
    # A path *under a regular file* cannot be created.
    assert append_record(target / "sub" / "ledger.jsonl",
                         build_record("verify")) is False


@pytest.mark.parametrize("raw,expect", [
    ("", None), ("0", None), ("off", None), ("false", None),
    ("1", ".rc-ledger.jsonl"), ("true", ".rc-ledger.jsonl"),
    ("custom/l.jsonl", "custom/l.jsonl"),
])
def test_ledger_env_path(monkeypatch, raw, expect):
    monkeypatch.setenv("RC_LEDGER", raw)
    got = ledger_env_path()
    assert (got is None) == (expect is None)
    if expect is not None:
        assert str(got) == expect


def test_record_run_is_noop_when_env_unset(monkeypatch, tmp_path):
    monkeypatch.delenv("RC_LEDGER", raising=False)
    monkeypatch.chdir(tmp_path)
    assert record_run("verify") is None
    assert list(tmp_path.iterdir()) == []


def test_record_run_appends_via_env(monkeypatch, tmp_path):
    target = tmp_path / "env-ledger.jsonl"
    monkeypatch.setenv("RC_LEDGER", str(target))
    rec = record_run("verify", wall_s=0.25, metrics=[make_metrics()])
    assert rec is not None
    view = read_ledger(target)
    assert len(view.records) == 1
    assert view.records[0]["wall_s"] == 0.25


def test_verify_files_appends_record(monkeypatch, tmp_path):
    """The toolchain wiring: a verify_files run under RC_LEDGER appends
    one ``verify`` record with suite, per-function walls, effectiveness
    ratios and the per-rule cost block (tracing on)."""
    from repro.frontend import verify_files
    from repro.report import casestudies_dir

    target = tmp_path / "ledger.jsonl"
    monkeypatch.setenv("RC_LEDGER", str(target))
    verify_files([casestudies_dir() / "mpool.c"], trace=True)
    view = read_ledger(target)
    assert len(view.records) == 1
    rec = view.records[0]
    assert rec["kind"] == "verify"
    assert rec["suite"] == ["mpool"]
    assert rec["wall_s"] > 0
    assert all(k.startswith("mpool:") for k in rec["functions"])
    assert rec["config"]["result_cache"] is False
    assert any(k.startswith("rule:") for k in rec["rules"]["entries"])


def test_verify_files_no_ledger_by_default(monkeypatch, tmp_path):
    from repro.frontend import verify_files
    from repro.report import casestudies_dir

    monkeypatch.delenv("RC_LEDGER", raising=False)
    monkeypatch.chdir(tmp_path)
    verify_files([casestudies_dir() / "mpool.c"])
    assert not (tmp_path / ".rc-ledger.jsonl").exists()


def test_git_sha_tolerates_missing_repo(tmp_path):
    from repro.obs import git_sha
    assert git_sha(tmp_path) == ""
    sha = git_sha()
    assert sha == "" or (len(sha) == 40
                         and all(c in "0123456789abcdef" for c in sha))


def test_records_are_single_lines(tmp_path):
    """One record == one line: the property concurrent interleaving and
    tolerant reads both rest on."""
    path = tmp_path / "ledger.jsonl"
    append_record(path, build_record("verify",
                                     extra={"multi": "a\nb\nc"}))
    text = path.read_text()
    assert text.endswith("\n") and text.count("\n") == 1
    rec = json.loads(text)
    assert rec["extra"]["multi"] == "a\nb\nc"
