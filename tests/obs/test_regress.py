"""The regression sentinel: bands, pools, and the rcstat CLI gate."""

import copy
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.driver.metrics import DriverMetrics
from repro.obs import (append_record, build_record, check_all_pools,
                       check_latest, check_record, comparable_history,
                       pool_key)

REPO = Path(__file__).resolve().parents[2]


def baseline_record(wall_s=1.0, now=1000.0):
    """A realistic ledger record with live cache-effectiveness ratios."""
    m = DriverMetrics(study="unit", jobs=1, cache_enabled=True,
                      cache_hits=8, cache_misses=2, wall_s=wall_s)
    m.add_function("f", True, "miss", wall_s, wall_s / 2,
                   {"solver_calls": 100, "rule_applications": 400},
                   solver_cache_hits=60, dispatch_table_hits=380)
    return build_record("verify", wall_s=wall_s, jobs=1,
                        metrics=[m], now=now)


def history_of(k=5, jitter=0.03):
    """k comparable records whose walls wobble ±jitter around 1s."""
    out = []
    for i in range(k):
        wall = 1.0 * (1.0 + jitter * (1 if i % 2 else -1))
        out.append(baseline_record(wall_s=wall, now=1000.0 + i))
    return out


def test_two_x_slowdown_is_flagged():
    """The acceptance case: an injected ~2x wall slowdown regresses."""
    history = history_of()
    slow = baseline_record(wall_s=2.0, now=2000.0)
    report = check_record(slow, history)
    assert report.status == "regression"
    assert [r.metric for r in report.regressions] == ["wall_s"]
    reg = report.regressions[0]
    assert reg.current == 2.0 and 0.9 < reg.baseline < 1.1
    assert "wall_s" in report.describe()


def test_cache_ratio_drop_is_flagged():
    """The acceptance case: a cache-hit-ratio collapse regresses even at
    identical wall time (today's wall, tomorrow's slowdown)."""
    history = history_of()
    cold = baseline_record(wall_s=1.0, now=2000.0)
    cold["cache_effectiveness"]["solver_memo"]["ratio"] = 0.2  # was 0.6
    report = check_record(cold, history)
    assert report.status == "regression"
    assert [r.metric for r in report.regressions] \
        == ["cache_effectiveness.solver_memo.ratio"]


def test_within_noise_rerun_passes():
    """The acceptance case: +5% wall and -0.05 ratio sit inside the
    bands — the sentinel must not cry wolf."""
    history = history_of()
    rerun = baseline_record(wall_s=1.05, now=2000.0)
    rerun["cache_effectiveness"]["solver_memo"]["ratio"] -= 0.05
    report = check_record(rerun, history)
    assert report.status == "ok" and report.ok


def test_absolute_floor_shields_tiny_suites():
    """2x of 10ms is scheduler jitter, not a regression: the relative
    band alone would flag it, the absolute floor must not."""
    history = [baseline_record(wall_s=0.010, now=1000.0 + i)
               for i in range(5)]
    report = check_record(baseline_record(wall_s=0.020, now=2000.0),
                          history)
    assert report.status == "ok"
    # ...but past the floor the relative band bites again.
    report = check_record(baseline_record(wall_s=0.5, now=2000.0), history)
    assert report.status == "regression"


def test_thin_history_skips_not_judges():
    report = check_record(baseline_record(now=2000.0), history_of(k=2))
    assert report.status == "skipped"
    assert report.ok  # a skip must not fail CI
    assert "2 comparable" in report.describe()


def test_never_ran_layers_are_not_regressions():
    """ratio=None ("layer never ran") on either side is skipped —
    unused is not 0% effective."""
    history = history_of()
    candidate = baseline_record(now=2000.0)
    candidate["cache_effectiveness"]["solver_memo"]["ratio"] = None
    assert check_record(candidate, history).status == "ok"
    for r in history:
        r["cache_effectiveness"]["solver_memo"]["ratio"] = None
    candidate["cache_effectiveness"]["solver_memo"]["ratio"] = 0.0
    assert check_record(candidate, history).status == "ok"


def test_pool_key_splits_on_run_shape():
    base = baseline_record()
    assert pool_key(base) == pool_key(copy.deepcopy(base))
    for mutate in (
        lambda r: r.update(jobs=8),
        lambda r: r.update(kind="bench"),
        lambda r: r["env"].update(RC_COMPILE="1"),
        lambda r: r["config"].update(result_cache=True),
        lambda r: r.update(suite=["other"]),
        lambda r: r["platform"].update(machine="arm64"),
    ):
        other = copy.deepcopy(base)
        mutate(other)
        assert pool_key(other) != pool_key(base), mutate


def test_pool_key_ignores_python_patch_release():
    a, b = baseline_record(), baseline_record()
    a["platform"]["python"] = "3.11.4"
    b["platform"]["python"] = "3.11.9"
    assert pool_key(a) == pool_key(b)
    b["platform"]["python"] = "3.12.1"
    assert pool_key(a) != pool_key(b)


def test_comparable_history_filters_and_excludes_candidate():
    history = history_of()
    alien = baseline_record(now=1500.0)
    alien["jobs"] = 8
    candidate = baseline_record(now=2000.0)
    pool = comparable_history(candidate, history + [alien, candidate])
    assert len(pool) == len(history)
    assert alien not in pool and candidate not in pool


def test_check_latest_and_check_all_pools():
    records = history_of() + [baseline_record(wall_s=2.0, now=2000.0)]
    assert check_latest(records).status == "regression"
    assert check_latest(records, kind="bench").status == "skipped"
    assert check_latest([], kind=None).status == "skipped"

    fast_pool = [baseline_record(wall_s=0.5, now=3000.0 + i)
                 for i in range(4)]
    for r in fast_pool:
        r["jobs"] = 4
    reports = check_all_pools(records + fast_pool)
    assert len(reports) == 2
    statuses = sorted(rep.status for rep in reports.values())
    assert statuses == ["ok", "regression"]


def rcstat(ledger, *flags):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("RC_LEDGER", None)
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / "rcstat.py"),
         "--ledger", str(ledger), *flags],
        capture_output=True, text=True, env=env, timeout=60)


def seed_ledger(path, records):
    for rec in records:
        assert append_record(path, rec)


def test_rcstat_check_gates_on_exit_code(tmp_path):
    """The CI wiring: rcstat --check exits 3 on a regression, 0 on an
    in-band rerun, 0 (skipped) on thin history."""
    ledger = tmp_path / "ledger.jsonl"
    seed_ledger(ledger, history_of()
                + [baseline_record(wall_s=2.0, now=2000.0)])
    proc = rcstat(ledger, "--check")
    assert proc.returncode == 3, proc.stdout + proc.stderr
    assert "REGRESSION wall_s" in proc.stdout

    ok_ledger = tmp_path / "ok.jsonl"
    seed_ledger(ok_ledger, history_of()
                + [baseline_record(wall_s=1.04, now=2000.0)])
    proc = rcstat(ok_ledger, "--check")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "sentinel: ok" in proc.stdout

    thin = tmp_path / "thin.jsonl"
    seed_ledger(thin, history_of(k=1) + [baseline_record(now=2000.0)])
    proc = rcstat(thin, "--check")
    assert proc.returncode == 0
    assert "skipped" in proc.stdout


def test_rcstat_check_all_and_dashboard(tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    bad_pool = history_of() + [baseline_record(wall_s=2.0, now=2000.0)]
    good_pool = [baseline_record(wall_s=0.5, now=3000.0 + i)
                 for i in range(4)]
    for r in good_pool:
        r["jobs"] = 4
    seed_ledger(ledger, bad_pool + good_pool)
    proc = rcstat(ledger, "--check-all")
    assert proc.returncode == 3
    assert "sentinel: ok" in proc.stdout
    assert "sentinel: regression" in proc.stdout

    proc = rcstat(ledger)
    assert proc.returncode == 0
    assert "verify" in proc.stdout and "unit" in proc.stdout

    proc = rcstat(ledger, "--cache-report")
    assert proc.returncode == 0
    assert "0.80" in proc.stdout  # result_cache 8/(8+2)


def test_rcstat_tolerates_corrupt_tail(tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    seed_ledger(ledger, history_of())
    with open(ledger, "ab") as fh:
        fh.write(b'{"torn": ')
    proc = rcstat(ledger)
    assert proc.returncode == 0
    assert "skipped 1 corrupt line(s)" in proc.stderr


def test_rcstat_diff_reports_wall_delta(tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    seed_ledger(ledger, [baseline_record(wall_s=1.0, now=1000.0),
                         baseline_record(wall_s=1.5, now=2000.0)])
    proc = rcstat(ledger, "--diff", "0", "-1")
    assert proc.returncode == 0
    assert "+500.0ms" in proc.stdout and "+50.0%" in proc.stdout


def test_custom_bands_reach_the_sentinel(tmp_path):
    """--wall-tol / --wall-floor are live: a +10% candidate passes the
    default bands but fails tightened ones."""
    ledger = tmp_path / "ledger.jsonl"
    seed_ledger(ledger, history_of(jitter=0.0)
                + [baseline_record(wall_s=1.1, now=2000.0)])
    assert rcstat(ledger, "--check").returncode == 0
    proc = rcstat(ledger, "--check", "--wall-tol", "0.05",
                  "--wall-floor", "0.01")
    assert proc.returncode == 3


def test_ledger_records_survive_json_round_trip():
    rec = baseline_record()
    assert json.loads(json.dumps(rec)) == rec
