"""Checker tests on small programs: what verifies, what fails, and why.

Each test is a miniature C program with a spec; negative tests pin down
that the checker rejects genuinely wrong code/specs (no vacuous success).
"""


from repro.frontend import verify_source


def ok(src):
    out = verify_source(src)
    assert out.ok, out.report()
    return out


def fails(src, fragment=None):
    out = verify_source(src)
    assert not out.ok, "expected a verification failure"
    if fragment is not None:
        assert fragment in out.report(), out.report()
    return out


class TestIntegers:
    def test_identity(self):
        ok('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("n @ int<size_t>")]]
        size_t id(size_t x) { return x; }''')

    def test_addition(self):
        ok('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::requires("{n <= 1000}")]]
        [[rc::returns("{n + 1} @ int<size_t>")]]
        size_t inc(size_t x) { return x + 1; }''')

    def test_overflow_rejected(self):
        # Without a bound, x + 1 may wrap: RefinedC rejects it.
        fails('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("{n + 1} @ int<size_t>")]]
        size_t inc(size_t x) { return x + 1; }''', "side condition")

    def test_wrong_result_rejected(self):
        fails('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::requires("{n <= 1000}")]]
        [[rc::returns("{n + 2} @ int<size_t>")]]
        size_t inc(size_t x) { return x + 1; }''')

    def test_signed_division_needs_nonzero(self):
        fails('''
        [[rc::parameters("a: nat", "b: nat")]]
        [[rc::args("a @ int<size_t>", "b @ int<size_t>")]]
        [[rc::returns("int<size_t>")]]
        size_t div(size_t a, size_t b) { return a / b; }''')

    def test_division_with_precondition(self):
        ok('''
        [[rc::parameters("a: nat", "b: nat")]]
        [[rc::args("a @ int<size_t>", "b @ int<size_t>")]]
        [[rc::requires("{b != 0}")]]
        [[rc::returns("{a / b} @ int<size_t>")]]
        size_t div(size_t a, size_t b) { return a / b; }''')

    def test_branching(self):
        ok('''
        [[rc::parameters("a: nat", "b: nat")]]
        [[rc::args("a @ int<size_t>", "b @ int<size_t>")]]
        [[rc::returns("{max(a, b)} @ int<size_t>")]]
        size_t maxi(size_t a, size_t b) {
          if (a < b) return b;
          return a;
        }''')

    def test_boolean_result(self):
        ok('''
        [[rc::parameters("a: nat", "b: nat")]]
        [[rc::args("a @ int<size_t>", "b @ int<size_t>")]]
        [[rc::returns("{a <= b} @ bool<int>")]]
        int le(size_t a, size_t b) { return a <= b; }''')


class TestOwnership:
    def test_write_through_pointer(self):
        ok('''
        [[rc::parameters("p: loc", "v: nat")]]
        [[rc::args("p @ &own<int<size_t>>", "v @ int<size_t>")]]
        [[rc::ensures("own p : v @ int<size_t>")]]
        void set(size_t* p, size_t v) { *p = v; }''')

    def test_swap(self):
        ok('''
        [[rc::parameters("p: loc", "q: loc", "x: nat", "y: nat")]]
        [[rc::args("p @ &own<x @ int<size_t>>", "q @ &own<y @ int<size_t>>")]]
        [[rc::ensures("own p : y @ int<size_t>", "own q : x @ int<size_t>")]]
        void swap(size_t* p, size_t* q) {
          size_t tmp = *p;
          *p = *q;
          *q = tmp;
        }''')

    def test_swap_wrong_post_rejected(self):
        fails('''
        [[rc::parameters("p: loc", "q: loc", "x: nat", "y: nat")]]
        [[rc::args("p @ &own<x @ int<size_t>>", "q @ &own<y @ int<size_t>>")]]
        [[rc::ensures("own p : x @ int<size_t>", "own q : y @ int<size_t>")]]
        void swap(size_t* p, size_t* q) {
          size_t tmp = *p;
          *p = *q;
          *q = tmp;
        }''')

    def test_use_after_move_rejected(self):
        # Returning the same owned pointer twice would duplicate ownership.
        fails('''
        [[rc::parameters("p: loc")]]
        [[rc::args("p @ &own<int<size_t>>")]]
        [[rc::returns("&own<int<size_t>>")]]
        [[rc::ensures("own p : int<size_t>")]]
        size_t* dup(size_t* p) { return p; }''')

    def test_null_deref_rejected(self):
        fails('''
        [[rc::returns("int<size_t>")]]
        size_t bad(void) {
          size_t* p = NULL;
          return *p;
        }''')

    def test_uninitialised_read_rejected(self):
        fails('''
        [[rc::returns("int<size_t>")]]
        size_t bad(void) {
          size_t x;
          return x;
        }''')

    def test_struct_field_update(self):
        ok('''
        struct [[rc::refined_by("x: nat", "y: nat")]] point {
          [[rc::field("x @ int<size_t>")]] size_t x;
          [[rc::field("y @ int<size_t>")]] size_t y;
        };
        [[rc::parameters("p: loc", "x: nat", "y: nat")]]
        [[rc::args("p @ &own<(x, y) @ point>")]]
        [[rc::ensures("own p : (y, x) @ point")]]
        void flip(struct point* p) {
          size_t tmp = p->x;
          p->x = p->y;
          p->y = tmp;
        }''')

    def test_missing_ownership_rejected(self):
        # Writing through an unowned pointer value must fail.
        fails('''
        [[rc::parameters("v: nat")]]
        [[rc::args("v @ int<size_t>")]]
        void bad(size_t v) {
          size_t* p = NULL;
          *p = v;
        }''')


class TestControlFlow:
    def test_loop_with_invariant(self):
        ok('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::requires("{n <= 1000}")]]
        [[rc::returns("n @ int<size_t>")]]
        size_t count(size_t n) {
          size_t i = 0;
          [[rc::exists("c: nat")]]
          [[rc::inv_vars("i: c @ int<size_t>")]]
          [[rc::constraints("{c <= n}")]]
          while (i < n) { i += 1; }
          return i;
        }''')

    def test_loop_invariant_too_weak(self):
        fails('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::requires("{n <= 1000}")]]
        [[rc::returns("n @ int<size_t>")]]
        size_t count(size_t n) {
          size_t i = 0;
          [[rc::exists("c: nat")]]
          [[rc::inv_vars("i: c @ int<size_t>")]]
          while (i < n) { i += 1; }
          return i;
        }''')

    def test_calls_compose_specs(self):
        ok('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::requires("{n <= 100}")]]
        [[rc::returns("{n + 1} @ int<size_t>")]]
        size_t inc(size_t x) { return x + 1; }

        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::requires("{n <= 50}")]]
        [[rc::returns("{n + 2} @ int<size_t>")]]
        size_t inc2(size_t x) { return inc(inc(x)); }''')

    def test_call_violating_callee_precondition(self):
        fails('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::requires("{n <= 100}")]]
        [[rc::returns("{n + 1} @ int<size_t>")]]
        size_t inc(size_t x) { return x + 1; }

        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("{n + 1} @ int<size_t>")]]
        size_t wrap(size_t x) { return inc(x); }''')

    def test_trusted_function_assumed(self):
        # rc::trusted specs are axioms for callers (no body check).
        ok('''
        [[rc::trusted]]
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("{n * 2} @ int<size_t>")]]
        size_t magic(size_t x);

        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("{n * 2} @ int<size_t>")]]
        size_t caller(size_t x) { return magic(x); }''')

    def test_spec_without_body_not_trusted_fails(self):
        # Regression: a spec'd function with no body and no rc::trusted
        # used to be silently skipped — its (unproved) spec was assumed
        # by every caller.  It must be an explicit failure.
        out = fails('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("{n * 2} @ int<size_t>")]]
        size_t magic(size_t x);

        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("{n * 2} @ int<size_t>")]]
        size_t caller(size_t x) { return magic(x); }''',
                    "no body")
        fr = out.result.functions["magic"]
        assert not fr.ok
        assert "rc::trusted" in fr.format_error()
        # The caller itself still verifies against the assumed spec.
        assert out.result.functions["caller"].ok

    def test_missing_body_reported_identically_by_driver_paths(self):
        src = '''
        [[rc::returns("{7} @ int<size_t>")]]
        size_t ghost(void);'''
        from repro.frontend import verify_source as vs
        serial = vs(src, jobs=1)
        parallel = vs(src, jobs=2)
        assert not serial.ok and not parallel.ok
        assert serial.result.functions["ghost"].format_error() \
            == parallel.result.functions["ghost"].format_error()


class TestStatistics:
    def test_no_backtracking_counter(self):
        out = ok('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("n @ int<size_t>")]]
        size_t id(size_t x) { return x; }''')
        for fr in out.result.functions.values():
            assert fr.stats.backtracks == 0

    def test_rule_accounting(self):
        out = ok('''
        [[rc::parameters("n: nat")]]
        [[rc::args("n @ int<size_t>")]]
        [[rc::returns("n @ int<size_t>")]]
        size_t id(size_t x) { return x; }''')
        fr = out.result.functions["id"]
        assert fr.stats.rule_applications > 0
        assert len(fr.stats.rules_used) > 0
        assert fr.stats.rule_applications >= len(fr.stats.rules_used)
