"""Spec-layer tests: type-expression parsing and spec building."""

import pytest

from repro.caesium.layout import SIZE_T, IntLayout, PtrLayout, StructLayout
from repro.pure import Sort, terms as T
from repro.refinedc import (ArrayT, AtomicBoolT, BoolT, ConstrainedT, ExistsT,
                            IntT, NamedT, NullT, OptionalT, OwnPtr,
                            RawFunctionAnnotations, RawStructAnnotations,
                            ShrPtr, SpecContext, SpecError, StructT, UninitT,
                            WandT, build_function_spec, define_struct_type,
                            parse_assertion, parse_type)
from repro.refinedc.judgments import LocType, TokenAtom


@pytest.fixture
def ctx():
    c = SpecContext()
    layout = StructLayout("mem_t", (("len", IntLayout(SIZE_T)),
                                    ("buffer", PtrLayout())))
    c.structs["mem_t"] = layout
    define_struct_type(layout, RawStructAnnotations(
        refined_by=["a: nat"],
        fields={"len": "a @ int<size_t>", "buffer": "&own<uninit<a>>"},
    ), c)
    return c


a = T.var("a")
n = T.var("n")
p = T.var("p", Sort.LOC)
ENV = {"a": a, "n": n, "p": p}


class TestParseType:
    def test_refined_int(self, ctx):
        t = parse_type("n @ int<size_t>", ENV, ctx)
        assert t == IntT(SIZE_T, n)

    def test_unrefined_int(self, ctx):
        assert parse_type("int<size_t>", ENV, ctx) == IntT(SIZE_T, None)

    def test_own_pointer(self, ctx):
        t = parse_type("p @ &own<uninit<a>>", ENV, ctx)
        assert t == OwnPtr(UninitT(a), p)

    def test_shared_pointer(self, ctx):
        t = parse_type("&shr<int<size_t>>", ENV, ctx)
        assert isinstance(t, ShrPtr)

    def test_null(self, ctx):
        assert parse_type("null", ENV, ctx) == NullT()

    def test_optional(self, ctx):
        t = parse_type("{n <= a} @ optional<&own<uninit<n>>, null>",
                       ENV, ctx)
        assert isinstance(t, OptionalT)
        assert t.phi == T.le(n, a)
        assert t.else_type == NullT()

    def test_named_type(self, ctx):
        t = parse_type("a @ mem_t", ENV, ctx)
        assert t == NamedT("mem_t", (a,))

    def test_named_type_unfolds_to_struct(self, ctx):
        t = ctx.types.unfold(NamedT("mem_t", (a,)))
        # nat refinement wraps the struct in its non-negativity constraint
        assert isinstance(t, ConstrainedT)
        assert isinstance(t.inner, StructT)
        assert t.inner.field_type("len") == IntT(SIZE_T, a)

    def test_wand(self, ctx):
        t = parse_type("wand<{own p : a @ mem_t}, a @ mem_t>", ENV, ctx)
        assert isinstance(t, WandT)
        assert isinstance(t.hole[0], LocType)
        assert t.hole[0].loc == p

    def test_array(self, ctx):
        env = dict(ENV)
        env["xs"] = T.var("xs", Sort.LIST)
        t = parse_type("xs @ array<int64_t, n>", env, ctx)
        assert isinstance(t, ArrayT) and t.length == n

    def test_atomicbool(self, ctx):
        t = parse_type("atomicbool<int; ; tok(lockres, 0)>", ENV, ctx)
        assert isinstance(t, AtomicBoolT)
        assert t.h_true == ()
        assert isinstance(t.h_false[0], TokenAtom)

    def test_multi_refinement(self, ctx):
        layout = StructLayout("pairs", (("x", IntLayout(SIZE_T)),))
        ctx.structs["pairs"] = layout
        define_struct_type(layout, RawStructAnnotations(
            refined_by=["u: nat", "v: nat"], fields={"x": "u @ int<size_t>"},
        ), ctx)
        t = parse_type("(a, n) @ pairs", ENV, ctx)
        assert t == NamedT("pairs", (a, n))

    def test_unknown_type(self, ctx):
        with pytest.raises(SpecError):
            parse_type("a @ widget_t", ENV, ctx)

    def test_wrong_arity(self, ctx):
        with pytest.raises(SpecError):
            parse_type("(a, n) @ mem_t", ENV, ctx)

    def test_optional_needs_refinement(self, ctx):
        with pytest.raises(SpecError):
            parse_type("optional<null, null>", ENV, ctx)


class TestParseAssertion:
    def test_own_assertion(self, ctx):
        atom = parse_assertion("own p : a @ mem_t", ENV, ctx)
        assert isinstance(atom, LocType) and not atom.shared
        assert atom.loc == p

    def test_shared_assertion(self, ctx):
        atom = parse_assertion("shr p : int<size_t>", ENV, ctx)
        assert isinstance(atom, LocType) and atom.shared

    def test_token(self, ctx):
        atom = parse_assertion("tok(lockres, 0)", ENV, ctx)
        assert isinstance(atom, TokenAtom) and not atom.dup

    def test_persistent_token(self, ctx):
        atom = parse_assertion("ptok(ready, 0)", ENV, ctx)
        assert atom.dup

    def test_pure_assertion(self, ctx):
        t = parse_assertion("{n <= a}", ENV, ctx)
        assert t == T.le(n, a)

    def test_loc_offset_assertion(self, ctx):
        atom = parse_assertion("own p + 8 : a @ mem_t", ENV, ctx)
        assert atom.loc == T.loc_offset(p, T.intlit(8))


class TestFunctionSpec:
    def test_alloc_spec(self, ctx):
        spec = build_function_spec("alloc", RawFunctionAnnotations(
            parameters=["a: nat", "n: nat", "p: loc"],
            args=["p @ &own<a @ mem_t>", "n @ int<size_t>"],
            returns="{n <= a} @ optional<&own<uninit<n>>, null>",
            ensures=["own p : {n <= a ? a - n : a} @ mem_t"],
        ), ctx)
        assert [q.name for q in spec.params] == ["a", "n", "p"]
        assert len(spec.param_facts) == 2  # two nat parameters
        assert isinstance(spec.returns, OptionalT)
        assert isinstance(spec.ensures[0], LocType)

    def test_exists_binders(self, ctx):
        spec = build_function_spec("f", RawFunctionAnnotations(
            parameters=["n: nat"], args=["n @ int<size_t>"],
            exists=["q: loc"], returns="int<size_t>",
            ensures=["own q : uninit<8>"],
        ), ctx)
        assert [y.name for y in spec.exists] == ["q"]

    def test_tactics_normalised(self, ctx):
        spec = build_function_spec("f", RawFunctionAnnotations(
            tactics=["all: multiset_solver."],
        ), ctx)
        assert spec.tactics == ["multiset_solver"]

    def test_bad_binder(self, ctx):
        with pytest.raises(SpecError):
            build_function_spec("f", RawFunctionAnnotations(
                parameters=["nat a"]), ctx)

    def test_unknown_lemma(self, ctx):
        with pytest.raises(SpecError):
            build_function_spec("f", RawFunctionAnnotations(
                lemmas=["no_such_lemma"]), ctx, lemma_table={})

    def test_ptr_type_definition(self, ctx):
        layout = StructLayout("chunk", (("size", IntLayout(SIZE_T)),
                                        ("next", PtrLayout())))
        ctx.structs["chunk"] = layout
        define_struct_type(layout, RawStructAnnotations(
            refined_by=["s: {gmultiset nat}"],
            ptr_type=("chunks_t", "{s != ∅} @ optional<&own<...>, null>"),
            exists=["n: nat", "tail: {gmultiset nat}"],
            size="n",
            constraints=["{s = {[n]} ⊎ tail}"],
            fields={"size": "n @ int<size_t>", "next": "tail @ chunks_t"},
        ), ctx)
        s = T.var("s", Sort.MSET)
        t = ctx.types.unfold(NamedT("chunks_t", (s,)))
        assert isinstance(t, OptionalT)
        assert isinstance(t.then_type, OwnPtr)
        inner = t.then_type.inner
        assert isinstance(inner, ExistsT)  # ∃n. ∃tail. padded(...)
