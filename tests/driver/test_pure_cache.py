"""End-to-end observational purity of the pure-stack caches.

The driver must produce byte-identical results — per-function outcome,
``Stats.counters()`` and exact error text — with the memoization caches
enabled and disabled; the caches may only surface in the (non-counter)
telemetry fields ``solver_cache_hits`` / ``terms_interned``."""

import pytest

from repro.frontend import verify_file, verify_source
from repro.pure.memo import (cache_enabled, caches_disabled, clear_pure_caches,
                             set_cache_enabled)

from .conftest import fingerprint, study_path

STUDIES = ["alloc", "mpool", "binary_search", "hashmap"]


@pytest.fixture(autouse=True)
def _caches_on():
    previous = set_cache_enabled(True)
    clear_pure_caches()
    yield
    set_cache_enabled(previous)


@pytest.mark.parametrize("study", STUDIES)
def test_cached_equals_uncached(study):
    path = study_path(study)
    cached = verify_file(path)
    with caches_disabled():
        reference = verify_file(path)
    assert cached.ok == reference.ok
    assert fingerprint(cached) == fingerprint(reference)


def test_cached_equals_uncached_on_failure():
    src = study_path("alloc").read_text().replace(
        "{n <= a} @ optional", "{n < a} @ optional")
    cached = verify_source(src)
    with caches_disabled():
        reference = verify_source(src)
    assert not cached.ok and not reference.ok
    assert fingerprint(cached) == fingerprint(reference)


def test_cache_telemetry_is_populated():
    out = verify_file(study_path("mpool"))
    m = out.metrics
    assert m.terms_interned > 0
    assert m.solver_cache_hits > 0
    assert m.terms_interned == sum(f.terms_interned for f in m.functions)
    assert m.solver_cache_hits == sum(f.solver_cache_hits
                                      for f in m.functions)


def test_disabled_caches_report_zero_hits():
    with caches_disabled():
        out = verify_file(study_path("mpool"))
    assert out.metrics.solver_cache_hits == 0
    # Interning is constructional, not gated — it always counts.
    assert out.metrics.terms_interned > 0


def test_toggle_restores_previous_state():
    assert cache_enabled() is True
    with caches_disabled():
        assert cache_enabled() is False
        with caches_disabled():
            assert cache_enabled() is False
        assert cache_enabled() is False
    assert cache_enabled() is True
