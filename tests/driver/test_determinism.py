"""Determinism: repeated runs produce identical statistics and errors.

The driver resets the global fresh-name counters before every function
check, so a verification is a pure function of (body, spec, context,
lemmas) — independent of run order, process, and job count.  These tests
pin that down for both the serial and the parallel scheduler."""

import pytest

from repro.frontend import verify_file, verify_source

from .conftest import fingerprint, study_path

STUDIES = ["mpool", "threadsafe_alloc"]
JOB_COUNTS = [1, 4]


@pytest.mark.parametrize("study", STUDIES)
@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_stats_identical_across_runs(study, jobs):
    path = study_path(study)
    first = verify_file(path, jobs=jobs)
    second = verify_file(path, jobs=jobs)
    assert first.ok and second.ok
    for name in first.result.functions:
        c1 = first.result.functions[name].stats.counters()
        c2 = second.result.functions[name].stats.counters()
        assert c1 == c2, f"{study}.{name} counters differ between runs"


@pytest.mark.parametrize("study", STUDIES)
def test_stats_identical_across_job_counts(study):
    path = study_path(study)
    outs = [verify_file(path, jobs=j) for j in JOB_COUNTS]
    assert fingerprint(outs[0]) == fingerprint(outs[1])


def _seeded_failure_source(study):
    """A deliberately broken variant with a deterministic error."""
    src = study_path(study).read_text()
    if study == "mpool":
        broken = src.replace('rc::args("&own<uninit<64>>")',
                             'rc::args("&own<uninit<65>>")', 1)
    else:
        broken = src.replace(
            'returns("b @ optional<&own<uninit<n>>, null>")',
            'returns("b @ optional<&own<uninit<{n+1}>>, null>")', 1)
    assert broken != src
    return broken


@pytest.mark.parametrize("study", STUDIES)
@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_error_text_identical_across_runs(study, jobs):
    broken = _seeded_failure_source(study)
    first = verify_source(broken, jobs=jobs)
    second = verify_source(broken, jobs=jobs)
    assert not first.ok and not second.ok
    errs1 = {n: fr.format_error()
             for n, fr in first.result.functions.items()}
    errs2 = {n: fr.format_error()
             for n, fr in second.result.functions.items()}
    assert errs1 == errs2
    assert any(errs1.values())


@pytest.mark.parametrize("study", STUDIES)
def test_error_text_identical_across_job_counts(study):
    broken = _seeded_failure_source(study)
    serial = verify_source(broken, jobs=1)
    parallel = verify_source(broken, jobs=4)
    assert fingerprint(serial) == fingerprint(parallel)
