"""Shared helpers for the verification-driver tests."""

from repro.report import casestudies_dir


def fingerprint(outcome):
    """The deterministic contents of a ProgramResult: function order,
    outcome, Stats counters and exact error text."""
    return [(name, fr.ok, fr.stats.counters(), fr.format_error())
            for name, fr in outcome.result.functions.items()]


def study_path(stem: str):
    return casestudies_dir() / f"{stem}.c"


ALL_STUDIES = [
    "alloc", "alloc_from_start", "free_list", "linked_list", "queue",
    "binary_search", "page_alloc", "bst_direct", "bst_layered", "hashmap",
    "mpool", "spinlock", "barrier", "threadsafe_alloc",
]
