"""End-to-end observational purity of the compiled hot paths.

``RC_COMPILE=0`` must restore the interpreted reference implementation
wholesale: per-function outcome, ``Stats.counters()`` and exact error
text are byte-identical across modes.  The compiler may only surface in
the (non-counter) telemetry fields ``dispatch_table_hits`` /
``terms_compiled``.  Mirror of ``test_pure_cache.py`` for the
``RC_COMPILE`` switch."""

import pytest

from repro.frontend import verify_file, verify_source
from repro.pure.compiled import (compile_disabled, compile_enabled,
                                 set_compile_enabled)
from repro.pure.memo import clear_pure_caches

from .conftest import fingerprint, study_path

STUDIES = ["alloc", "mpool", "binary_search", "hashmap"]


@pytest.fixture(autouse=True)
def _compiled_on():
    previous = set_compile_enabled(True)
    clear_pure_caches()
    yield
    set_compile_enabled(previous)


@pytest.mark.parametrize("study", STUDIES)
def test_compiled_equals_interpreted(study):
    path = study_path(study)
    compiled = verify_file(path)
    with compile_disabled():
        reference = verify_file(path)
    assert compiled.ok == reference.ok
    assert fingerprint(compiled) == fingerprint(reference)


def test_compiled_equals_interpreted_on_failure():
    """Error text is fingerprint-relevant: a failing proof must report
    the identical diagnostic on both paths."""
    src = study_path("alloc").read_text().replace(
        "{n <= a} @ optional", "{n < a} @ optional")
    compiled = verify_source(src)
    with compile_disabled():
        reference = verify_source(src)
    assert not compiled.ok and not reference.ok
    assert fingerprint(compiled) == fingerprint(reference)


def test_compile_telemetry_is_populated():
    out = verify_file(study_path("mpool"))
    m = out.metrics
    assert m.dispatch_table_hits > 0
    assert m.terms_compiled > 0
    assert m.dispatch_table_hits == sum(f.dispatch_table_hits
                                        for f in m.functions)
    assert m.terms_compiled == sum(f.terms_compiled for f in m.functions)


def test_disabled_compiler_reports_zero_telemetry():
    with compile_disabled():
        out = verify_file(study_path("mpool"))
    assert out.metrics.dispatch_table_hits == 0
    assert out.metrics.terms_compiled == 0


def test_toggle_restores_previous_state():
    assert compile_enabled() is True
    with compile_disabled():
        assert compile_enabled() is False
        with compile_disabled():
            assert compile_enabled() is False
        assert compile_enabled() is False
    assert compile_enabled() is True
