"""Parallel scheduling: process-pool results equal serial results.

Per-function verification is spec-modular (each function is checked
against its callees' *specs*), so the driver may verify functions in any
order, in any process — these tests pin down that doing so changes
nothing observable."""

import os

import pytest

from repro.frontend import verify_file, verify_files

from .conftest import ALL_STUDIES, fingerprint, study_path

JOBS = int(os.environ.get("RC_TEST_JOBS", "2"))


@pytest.mark.slow
@pytest.mark.parametrize("study", ALL_STUDIES)
def test_parallel_equals_serial_every_study(study):
    serial = verify_file(study_path(study), jobs=1)
    parallel = verify_file(study_path(study), jobs=JOBS)
    assert serial.ok and parallel.ok
    assert fingerprint(serial) == fingerprint(parallel)


def test_parallel_equals_serial_quick():
    """The fast inner-loop version over two representative studies."""
    for study in ("mpool", "hashmap"):
        serial = verify_file(study_path(study), jobs=1)
        parallel = verify_file(study_path(study), jobs=JOBS)
        assert fingerprint(serial) == fingerprint(parallel)


def test_parallel_preserves_function_order():
    serial = verify_file(study_path("mpool"), jobs=1)
    parallel = verify_file(study_path("mpool"), jobs=JOBS)
    assert list(serial.result.functions) == list(parallel.result.functions)


def test_parallel_keeps_derivations():
    out = verify_file(study_path("mpool"), jobs=JOBS)
    for fr in out.result.functions.values():
        assert fr.derivations, "worker results must carry derivations"
        assert fr.derivations[0].count("rule") > 0


def test_parallel_failure_reporting():
    src = study_path("alloc").read_text().replace(
        "{n <= a} @ optional", "{n < a} @ optional")
    from repro.frontend import verify_source
    serial = verify_source(src, jobs=1)
    parallel = verify_source(src, jobs=JOBS)
    assert not serial.ok and not parallel.ok
    assert fingerprint(serial) == fingerprint(parallel)
    assert "Cannot prove side condition" in parallel.report()


def test_verify_files_shared_pool():
    paths = [study_path(s) for s in ("mpool", "spinlock", "barrier")]
    serial = verify_files(paths, jobs=1)
    parallel = verify_files(paths, jobs=JOBS)
    assert list(serial) == list(parallel) == ["mpool", "spinlock",
                                              "barrier"]
    for study in serial:
        assert fingerprint(serial[study]) == fingerprint(parallel[study])


def test_jobs_zero_means_cpu_count():
    out = verify_file(study_path("spinlock"), jobs=0)
    assert out.ok
    assert out.metrics.jobs == (os.cpu_count() or 1)
