"""Incremental dependency-aware re-verification: dirty-set precision,
outcome equality with full runs, and cache-state robustness."""

import json
import shutil

import pytest

from repro.driver import engine_fingerprint
from repro.driver.incremental import (STATE_FILE, IncrementalState,
                                      source_sha)
from repro.frontend import verify_file, verify_files, verify_source

from .conftest import fingerprint, study_path

# A three-deep call chain where the top caller does NOT mention the leaf:
# f3 -> f2 -> f1.  A spec edit on f1 must ripple to f2 (direct caller)
# AND f3 (transitive caller only).
CHAIN = '''
[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::requires("{n <= 1000}")]]
[[rc::returns("{n + 1} @ int<size_t>")]]
size_t f1(size_t x) { return x + 1; }

[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::requires("{n <= 999}")]]
[[rc::returns("{n + 2} @ int<size_t>")]]
size_t f2(size_t x) { return f1(x) + 1; }

[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::requires("{n <= 998}")]]
[[rc::returns("{n + 3} @ int<size_t>")]]
size_t f3(size_t x) { return f2(x) + 1; }

[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::returns("n @ int<size_t>")]]
size_t bystander(size_t x) { return x; }
'''


def states(out):
    return {f.name: f.cache for f in out.metrics.functions}


def rechecked(out):
    return sorted(f.name for f in out.metrics.functions
                  if f.cache == "dirty")


def run(src, tmp_path, **kw):
    return verify_source(src, cache_dir=tmp_path / "cache",
                         incremental=True, **kw)


class TestDirtySet:
    def test_cold_run_checks_everything(self, tmp_path):
        out = run(CHAIN, tmp_path)
        assert out.ok
        assert set(states(out).values()) == {"dirty"}
        assert out.metrics.functions_dirty == 4
        assert out.metrics.functions_clean == 0

    def test_noop_rerun_rechecks_nothing(self, tmp_path):
        first = run(CHAIN, tmp_path)
        again = run(CHAIN, tmp_path)
        assert set(states(again).values()) == {"clean"}
        assert again.metrics.functions_dirty == 0
        assert again.metrics.functions_clean == 4
        assert again.metrics.results_reused == 4
        assert fingerprint(first) == fingerprint(again)

    def test_leaf_body_edit_rechecks_exactly_one(self, tmp_path):
        run(CHAIN, tmp_path)
        edited = CHAIN.replace("{ return x + 1; }", "{ return 1 + x; }")
        out = run(edited, tmp_path)
        assert out.ok
        assert rechecked(out) == ["f1"]
        assert states(out)["f2"] == "clean"
        assert states(out)["f3"] == "clean"
        assert states(out)["bystander"] == "clean"

    def test_spec_edit_rechecks_all_transitive_callers(self, tmp_path):
        run(CHAIN, tmp_path)
        # Whitespace inside the annotation string: parses identically,
        # but the recorded spec text (and only it) changes.
        edited = CHAIN.replace("{n + 1} @ int<size_t>",
                               "{n + 1 } @ int<size_t>")
        out = run(edited, tmp_path)
        assert out.ok
        # f2 calls f1 directly; f3 only through f2 — both must re-check.
        assert rechecked(out) == ["f1", "f2", "f3"]
        assert states(out)["bystander"] == "clean"

    def test_mid_spec_edit_does_not_touch_callees(self, tmp_path):
        run(CHAIN, tmp_path)
        edited = CHAIN.replace("{n + 2} @ int<size_t>",
                               "{n + 2 } @ int<size_t>")
        out = run(edited, tmp_path)
        assert rechecked(out) == ["f2", "f3"]
        assert states(out)["f1"] == "clean"


class TestCaseStudies:
    def test_binary_search_noop_and_leaf_edit(self, tmp_path):
        src_path = study_path("binary_search")
        work = tmp_path / "binary_search.c"
        text = src_path.read_text()
        work.write_text(text)
        cache = tmp_path / "cache"

        cold = verify_file(work, cache_dir=cache, incremental=True)
        assert cold.ok

        noop = verify_file(work, cache_dir=cache, incremental=True)
        assert noop.metrics.functions_dirty == 0
        assert noop.metrics.functions_clean == len(noop.result.functions)
        assert fingerprint(cold) == fingerprint(noop)

        # Leaf body edit: cmp_le only.
        assert "return x <= y;" in text
        work.write_text(text.replace("return x <= y;", "return y >= x;"))
        out = verify_file(work, cache_dir=cache, incremental=True)
        assert out.ok
        assert rechecked(out) == ["cmp_le"]

    def test_binary_search_spec_edit_ripples(self, tmp_path):
        src_path = study_path("binary_search")
        work = tmp_path / "binary_search.c"
        text = src_path.read_text()
        work.write_text(text)
        cache = tmp_path / "cache"
        verify_file(work, cache_dir=cache, incremental=True)

        marker = '[[rc::returns("{x <= y} @ bool<int>")]]'
        assert marker in text
        work.write_text(text.replace(
            marker, '[[rc::returns("{x <= y } @ bool<int>")]]', 1))
        out = verify_file(work, cache_dir=cache, incremental=True)
        assert out.ok
        # cmp_le's spec changed; binary_search and find_slot both
        # (transitively) call it.
        assert rechecked(out) == ["binary_search", "cmp_le", "find_slot"]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_incremental_equals_full_run(self, tmp_path, jobs):
        """After an edit, incremental outcomes (status, counters, error
        text) are byte-equal to a cache-free full run."""
        stems = ["binary_search", "hashmap", "mpool"]
        work_paths = []
        for stem in stems:
            p = tmp_path / f"{stem}.c"
            shutil.copy(study_path(stem), p)
            work_paths.append(p)
        cache = tmp_path / "cache"
        verify_files(work_paths, jobs=jobs, cache_dir=cache,
                     incremental=True)

        # Edit one leaf in one file; everything else stays clean.
        bs = tmp_path / "binary_search.c"
        bs.write_text(bs.read_text().replace("return x <= y;",
                                             "return y >= x;"))
        incr = verify_files(work_paths, jobs=jobs, cache_dir=cache,
                            incremental=True)
        full = verify_files(work_paths, jobs=jobs)
        assert {s: fingerprint(o) for s, o in incr.items()} \
            == {s: fingerprint(o) for s, o in full.items()}
        assert sum(o.metrics.functions_dirty for o in incr.values()) == 1

    def test_failures_reported_identically_when_reused(self, tmp_path):
        bad = CHAIN.replace("{ return x; }", "{ return x + 1; }")
        first = run(bad, tmp_path)
        again = run(bad, tmp_path)
        assert not first.ok and not again.ok
        assert states(again)["bystander"] == "clean"
        assert fingerprint(first) == fingerprint(again)


class TestRobustness:
    """Any state defect degrades to a full re-verification — never a
    wrong or missing outcome."""

    def _state_path(self, tmp_path):
        return tmp_path / "cache" / STATE_FILE

    def test_corrupted_state_degrades_to_full(self, tmp_path):
        first = run(CHAIN, tmp_path)
        self._state_path(tmp_path).write_text("{ not json !")
        out = run(CHAIN, tmp_path)
        assert set(states(out).values()) == {"dirty"}
        assert fingerprint(first) == fingerprint(out)
        # ... and the rewritten state works again on the next run.
        assert set(states(run(CHAIN, tmp_path)).values()) == {"clean"}

    def test_truncated_state_degrades_to_full(self, tmp_path):
        first = run(CHAIN, tmp_path)
        path = self._state_path(tmp_path)
        path.write_text(path.read_text()[:40])
        out = run(CHAIN, tmp_path)
        assert set(states(out).values()) == {"dirty"}
        assert fingerprint(first) == fingerprint(out)

    def test_version_mismatch_degrades_to_full(self, tmp_path):
        run(CHAIN, tmp_path)
        path = self._state_path(tmp_path)
        data = json.loads(path.read_text())
        data["format_version"] = 999
        path.write_text(json.dumps(data))
        out = run(CHAIN, tmp_path)
        assert set(states(out).values()) == {"dirty"}

    def test_foreign_engine_state_degrades_to_full(self, tmp_path):
        """A CI restore-keys cache from an older checker build must not
        poison results: the engine fingerprint mismatch voids it."""
        run(CHAIN, tmp_path)
        path = self._state_path(tmp_path)
        data = json.loads(path.read_text())
        assert data["engine"] == engine_fingerprint()
        data["engine"] = "0" * 64
        path.write_text(json.dumps(data))
        out = run(CHAIN, tmp_path)
        assert set(states(out).values()) == {"dirty"}

    def test_evicted_result_entry_forces_recheck(self, tmp_path):
        run(CHAIN, tmp_path)
        # Blow away the result entries but keep depgraph.json: clean
        # functions can no longer be reused and must re-check.
        for p in (tmp_path / "cache").iterdir():
            if p.is_dir():
                shutil.rmtree(p)
        out = run(CHAIN, tmp_path)
        assert out.ok
        assert set(states(out).values()) == {"dirty"}
        for f in out.metrics.functions:
            assert f.ok

    def test_concurrent_writers_leave_usable_state(self, tmp_path):
        """Two jobs>1 runs against the same cache dir (as racing CI jobs
        would): both succeed, and the surviving state is valid."""
        a = verify_source(CHAIN, cache_dir=tmp_path / "cache",
                          incremental=True, jobs=2)
        b = verify_source(CHAIN.replace("{ return x; }",
                                        "{ return x + 0; }"),
                          cache_dir=tmp_path / "cache",
                          incremental=True, jobs=2)
        assert a.ok and b.ok
        state = IncrementalState.load(tmp_path / "cache",
                                      engine_fingerprint())
        assert state.units  # last writer's state parsed fine
        again = verify_source(CHAIN, cache_dir=tmp_path / "cache",
                              incremental=True)
        assert again.ok
        assert fingerprint(a) == fingerprint(again)

    def test_state_records_source_sha(self, tmp_path):
        out = run(CHAIN, tmp_path)
        assert out.ok
        state = IncrementalState.load(tmp_path / "cache",
                                      engine_fingerprint())
        assert state.units["<unit>"].source_sha == source_sha(CHAIN)
        assert set(state.units["<unit>"].functions) \
            == set(out.result.functions)
