"""The driver metrics layer: per-phase timings, counters, JSON export."""

import json

from repro.driver import merge_metrics
from repro.driver.metrics import METRICS_SCHEMA_VERSION, DriverMetrics
from repro.frontend import verify_file
from repro.lithium.search import TELEMETRY_KEYS

from .conftest import study_path


def test_phase_timings_recorded():
    out = verify_file(study_path("mpool"))
    m = out.metrics
    assert m is not None
    assert m.phases.parse_s > 0
    assert m.phases.elaborate_s > 0
    assert m.phases.search_s > 0
    assert m.phases.solver_s >= 0
    assert m.wall_s > 0


def test_solver_time_is_part_of_check_time():
    out = verify_file(study_path("free_list"))
    for f in out.metrics.functions:
        assert 0 <= f.solver_s <= f.wall_s + 1e-6
    for fr in out.result.functions.values():
        assert fr.stats.solver_calls > 0


def test_function_metrics_match_results():
    out = verify_file(study_path("mpool"))
    assert [f.name for f in out.metrics.functions] \
        == list(out.result.functions)
    for f in out.metrics.functions:
        fr = out.result.functions[f.name]
        assert f.ok == fr.ok
        assert f.counters == fr.stats.counters()


def test_json_export_schema():
    out = verify_file(study_path("mpool"))
    data = json.loads(out.metrics.to_json())
    assert data["schema_version"] == METRICS_SCHEMA_VERSION == 6
    assert data["jobs"] == 1
    assert set(data["phases"]) == {"parse_s", "elaborate_s", "search_s",
                                   "solver_s"}
    assert isinstance(data["functions"], list)
    fn = data["functions"][0]
    assert {"name", "ok", "cache", "wall_s", "solver_s",
            "counters", "solver_cache_hits", "terms_interned",
            "dispatch_table_hits", "terms_compiled"} <= set(fn)
    assert fn["counters"]["backtracks"] == 0
    # The engine telemetry must never leak into the deterministic counters
    # — the exclusion list is the single shared TELEMETRY_KEYS constant.
    for key in TELEMETRY_KEYS:
        assert key not in fn["counters"]
    assert data["terms_interned"] > 0


def test_json_v4_incremental_counters(tmp_path):
    """Schema v4: clean/dirty/reused counters are 0 for non-incremental
    runs and populated by the incremental driver."""
    out = verify_file(study_path("mpool"))
    data = json.loads(out.metrics.to_json())
    assert data["functions_clean"] == 0
    assert data["functions_dirty"] == 0
    assert data["results_reused"] == 0

    verify_file(study_path("mpool"), cache_dir=tmp_path, incremental=True)
    warm = verify_file(study_path("mpool"), cache_dir=tmp_path,
                       incremental=True)
    data = json.loads(warm.metrics.to_json())
    assert data["functions_clean"] == len(data["functions"])
    assert data["functions_dirty"] == 0
    assert data["results_reused"] == data["functions_clean"]
    assert {f["cache"] for f in data["functions"]} == {"clean"}


def test_json_v5_compiled_telemetry():
    """Schema v5: dispatch-table and term-compilation telemetry is
    populated with the compiler on, zero with it off, and never changes
    the deterministic counters (round-trips through JSON either way)."""
    from repro.pure.compiled import COMPILE, set_compile_enabled
    from repro.pure.memo import clear_pure_caches

    prev = COMPILE.enabled
    try:
        set_compile_enabled(True)
        # Cold pass: the process-wide memo dicts survive across functions
        # (by design), and a warm dict satisfies lookups before any
        # closure needs compiling — terms_compiled would then be 0.
        clear_pure_caches()
        hot = json.loads(verify_file(study_path("mpool")).metrics.to_json())
        set_compile_enabled(False)
        cold = json.loads(
            verify_file(study_path("mpool")).metrics.to_json())
    finally:
        set_compile_enabled(prev)

    assert hot["dispatch_table_hits"] > 0
    assert hot["terms_compiled"] > 0
    assert cold["dispatch_table_hits"] == 0
    assert cold["terms_compiled"] == 0
    for h, c in zip(hot["functions"], cold["functions"]):
        assert h["counters"] == c["counters"]
        assert h["ok"] == c["ok"]
    assert hot == json.loads(json.dumps(hot))     # JSON round-trip
    assert cold == json.loads(json.dumps(cold))


def test_merge_metrics_sums_compiled_telemetry():
    a = verify_file(study_path("mpool")).metrics
    b = verify_file(study_path("spinlock")).metrics
    total = merge_metrics([a, b])
    assert total.dispatch_table_hits \
        == a.dispatch_table_hits + b.dispatch_table_hits
    assert total.terms_compiled == a.terms_compiled + b.terms_compiled


def test_json_v3_trace_key_absent_when_off():
    """An untraced v3 record must stay byte-compatible with v2 consumers:
    no ``trace`` key at all (not a null), and a round-trip through JSON
    preserves every field."""
    out = verify_file(study_path("mpool"), trace=False)
    data = json.loads(out.metrics.to_json())
    assert "trace" not in data
    assert data["units"] == []
    again = json.loads(out.metrics.to_json())
    assert again == data


def test_json_v3_trace_block_present_when_on():
    out = verify_file(study_path("mpool"), trace=True)
    data = json.loads(out.metrics.to_json())
    assert data["schema_version"] == METRICS_SCHEMA_VERSION
    block = data["trace"]
    assert {"events", "dropped", "rules", "solver",
            "slowest_prove"} <= set(block)
    assert block["events"] > 0
    assert data == json.loads(json.dumps(data))   # JSON-clean


def test_summary_lines():
    out = verify_file(study_path("mpool"), trace=False)
    summary = out.metrics.summary()
    assert "driver: jobs=1" in summary
    assert "phases: parse" in summary
    assert "trace:" not in summary
    traced = verify_file(study_path("mpool"), trace=True)
    assert "trace:" in traced.metrics.summary()


def test_report_renders_metrics():
    out = verify_file(study_path("mpool"))
    report = out.report()
    assert "driver: jobs=1" in report
    assert "phases: parse" in report


def test_merge_metrics_aggregates():
    a = verify_file(study_path("mpool")).metrics
    b = verify_file(study_path("spinlock")).metrics
    total = merge_metrics([a, b])
    assert len(total.functions) == len(a.functions) + len(b.functions)
    assert abs(total.phases.search_s
               - (a.phases.search_s + b.phases.search_s)) < 1e-9
    assert total.cache_hits == 0 and total.cache_misses == 0


def test_merge_metrics_preserves_unit_names():
    """Regression: merging used to drop the per-unit study names; they
    must be preserved, in input order, in the ``units`` list."""
    a = verify_file(study_path("mpool")).metrics
    b = verify_file(study_path("spinlock")).metrics
    total = merge_metrics([a, b])
    assert total.units == ["mpool", "spinlock"]
    assert total.study == "<all>"
    data = json.loads(total.to_json())
    assert data["units"] == ["mpool", "spinlock"]


def test_merge_metrics_merges_trace_blocks():
    a = verify_file(study_path("mpool"), trace=True).metrics
    b = verify_file(study_path("spinlock"), trace=True).metrics
    total = merge_metrics([a, b])
    assert total.trace is not None
    assert total.trace["events"] == a.trace["events"] + b.trace["events"]
    for name, agg in a.trace["rules"].items():
        merged = total.trace["rules"][name]
        expect = agg["count"] + b.trace["rules"].get(name,
                                                     {}).get("count", 0)
        assert merged["count"] == expect
    assert len(total.trace["slowest_prove"]) <= 5
    durs = [c["dur_s"] for c in total.trace["slowest_prove"]]
    assert durs == sorted(durs, reverse=True)


def test_cache_hit_rate():
    m = DriverMetrics()
    assert m.cache_hit_rate == 0.0
    m.cache_hits, m.cache_misses = 3, 1
    assert m.cache_hit_rate == 0.75


def test_json_v6_cache_effectiveness_block():
    """Schema v6: every record carries the derived cache-effectiveness
    block; never-exercised layers report ``ratio: null`` ("unused"),
    never 0.0 ("0% effective")."""
    out = verify_file(study_path("mpool"))
    data = json.loads(out.metrics.to_json())
    eff = data["cache_effectiveness"]
    assert set(eff) == {"result_cache", "solver_memo", "dispatch_table",
                        "elaboration_memo", "depgraph"}
    # Cache off, serial run: the result cache and elaboration memo never
    # ran, while solver memo and depgraph have live denominators.
    assert eff["result_cache"]["total"] == 0
    assert eff["result_cache"]["ratio"] is None
    assert eff["elaboration_memo"]["ratio"] is None
    assert eff["solver_memo"]["total"] > 0
    assert eff["depgraph"] == {"hits": 0,
                               "total": len(data["functions"]),
                               "ratio": 0.0}
    assert eff["dispatch_table"]["rule_applications"] > 0


def test_json_v6_round_trip():
    """``from_dict(to_dict(m)).to_dict()`` is byte-identical for a real
    record — traced and untraced alike."""
    for trace in (False, True):
        out = verify_file(study_path("mpool"), trace=trace)
        d = out.metrics.to_dict()
        assert DriverMetrics.from_dict(d).to_dict() == d
        # And through an actual JSON encode/decode cycle.
        roundtrip = DriverMetrics.from_dict(json.loads(out.metrics.to_json()))
        assert json.loads(roundtrip.to_json()) == json.loads(
            out.metrics.to_json())


def test_json_v5_record_still_loads():
    """A v5 record (no elab counters, no effectiveness block) loads with
    the v6 fields defaulted, and re-serializing it adds *only* the v6
    derived/telemetry keys — every v5 field survives byte-compatibly."""
    out = verify_file(study_path("mpool"))
    v6 = out.metrics.to_dict()
    v5 = json.loads(json.dumps(v6))
    v5["schema_version"] = 5
    del v5["cache_effectiveness"]
    del v5["elab_memo_hits"]
    del v5["elab_memo_misses"]

    m = DriverMetrics.from_dict(v5)
    assert m.elab_memo_hits == 0 and m.elab_memo_misses == 0
    reexported = m.to_dict()
    assert reexported["schema_version"] == METRICS_SCHEMA_VERSION
    for key, value in v5.items():
        if key == "schema_version":
            continue
        assert reexported[key] == value, key


def test_from_dict_rejects_newer_schema():
    import pytest
    with pytest.raises(ValueError):
        DriverMetrics.from_dict({"schema_version": METRICS_SCHEMA_VERSION
                                 + 1})


def test_merge_metrics_sums_elab_memo_counters():
    a = verify_file(study_path("mpool")).metrics
    b = verify_file(study_path("spinlock")).metrics
    a.elab_memo_hits, a.elab_memo_misses = 3, 1
    b.elab_memo_hits, b.elab_memo_misses = 2, 2
    total = merge_metrics([a, b])
    assert total.elab_memo_hits == 5
    assert total.elab_memo_misses == 3
