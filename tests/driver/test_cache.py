"""The content-addressed result cache: hits, invalidation, robustness."""

import dataclasses
import json

from repro.driver import function_cache_key
from repro.frontend import verify_file, verify_source
from repro.lang.elaborate import elaborate_source
from repro.proofs.manual import LEMMAS_BY_STUDY
from repro.pure.terms import intlit, le

from .conftest import fingerprint, study_path

SRC = '''
[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::requires("{n <= 1000}")]]
[[rc::returns("{n + 1} @ int<size_t>")]]
size_t inc(size_t x) { return x + 1; }

[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::returns("n @ int<size_t>")]]
size_t id(size_t x) { return x; }
'''


def _entries(cache_dir):
    return list(cache_dir.rglob("*.json"))


class TestHits:
    def test_second_run_hits(self, tmp_path):
        first = verify_source(SRC, cache=True, cache_dir=tmp_path)
        assert first.metrics.cache_misses == 2
        assert first.metrics.cache_hits == 0
        second = verify_source(SRC, cache=True, cache_dir=tmp_path)
        assert second.metrics.cache_hits == 2
        assert second.metrics.cache_misses == 0
        assert fingerprint(first) == fingerprint(second)

    def test_case_study_rerun_is_all_hits(self, tmp_path):
        path = study_path("mpool")
        first = verify_file(path, cache=True, cache_dir=tmp_path)
        second = verify_file(path, cache=True, cache_dir=tmp_path)
        assert second.metrics.cache_hits == len(second.result.functions)
        assert second.metrics.cache_misses == 0
        assert fingerprint(first) == fingerprint(second)

    def test_failures_are_cached_with_error_text(self, tmp_path):
        bad = SRC.replace("{n + 1} @ int", "{n + 2} @ int")
        first = verify_source(bad, cache=True, cache_dir=tmp_path)
        second = verify_source(bad, cache=True, cache_dir=tmp_path)
        assert not first.ok and not second.ok
        assert second.metrics.cache_hits == 2
        assert fingerprint(first) == fingerprint(second)

    def test_hit_marks_metrics(self, tmp_path):
        verify_source(SRC, cache=True, cache_dir=tmp_path)
        again = verify_source(SRC, cache=True, cache_dir=tmp_path)
        assert {f.cache for f in again.metrics.functions} == {"hit"}


class TestInvalidation:
    def test_spec_text_change_misses(self, tmp_path):
        verify_source(SRC, cache=True, cache_dir=tmp_path)
        changed = SRC.replace("{n <= 1000}", "{n <= 999}")
        out = verify_source(changed, cache=True, cache_dir=tmp_path)
        # inc's spec changed -> miss; id is untouched -> hit.
        assert out.metrics.cache_misses == 1
        assert out.metrics.cache_hits == 1

    def test_body_change_misses(self, tmp_path):
        verify_source(SRC, cache=True, cache_dir=tmp_path)
        changed = SRC.replace("return x; }", "return x + 0; }")
        out = verify_source(changed, cache=True, cache_dir=tmp_path)
        assert out.metrics.cache_misses == 1
        assert out.metrics.cache_hits == 1

    def test_struct_annotation_change_invalidates_all(self, tmp_path):
        src = study_path("alloc").read_text()
        verify_source(src, cache=True, cache_dir=tmp_path)
        # Rename the struct's refinement variable (a -> m) consistently
        # across its field annotations; the function annotations are
        # untouched but depend on the struct, so every entry must miss.
        changed = (src
                   .replace('refined_by("a: nat")', 'refined_by("m: nat")')
                   .replace('field("a @ int<size_t>")',
                            'field("m @ int<size_t>")')
                   .replace('field("&own<uninit<a>>")',
                            'field("&own<uninit<m>>")'))
        assert changed != src
        out = verify_source(changed, cache=True, cache_dir=tmp_path)
        assert out.ok
        assert out.metrics.cache_hits == 0

    def test_lemma_table_change_misses(self):
        """Changing a lemma's statement changes the cache key even though
        the source text is identical."""
        src = study_path("binary_search").read_text()
        table = dict(LEMMAS_BY_STUDY["binary_search"])
        tp1 = elaborate_source(src, table)
        name = next(n for n, s in tp1.specs.items() if s.lemmas)
        key1 = function_cache_key(tp1, name)
        strengthened = {
            k: dataclasses.replace(
                v, hyps=v.hyps + (le(intlit(0), intlit(0)),))
            for k, v in table.items()
        }
        tp2 = elaborate_source(src, strengthened)
        key2 = function_cache_key(tp2, name)
        assert key1 != key2

    def test_tactics_in_key(self):
        src = study_path("free_list").read_text()
        tp = elaborate_source(src)
        name = next(n for n, s in tp.specs.items() if s.tactics)
        key1 = function_cache_key(tp, name)
        tp.specs[name].tactics = []
        assert function_cache_key(tp, name) != key1


class TestRobustness:
    def test_corrupted_entry_is_a_miss(self, tmp_path):
        verify_source(SRC, cache=True, cache_dir=tmp_path)
        for entry in _entries(tmp_path):
            entry.write_text("{ not json !!")
        out = verify_source(SRC, cache=True, cache_dir=tmp_path)
        assert out.ok
        assert out.metrics.cache_hits == 0
        assert out.metrics.cache_misses == 2

    def test_truncated_entry_is_a_miss(self, tmp_path):
        verify_source(SRC, cache=True, cache_dir=tmp_path)
        for entry in _entries(tmp_path):
            entry.write_text(entry.read_text()[:40])
        out = verify_source(SRC, cache=True, cache_dir=tmp_path)
        assert out.ok and out.metrics.cache_hits == 0

    def test_stale_format_version_is_a_miss(self, tmp_path):
        verify_source(SRC, cache=True, cache_dir=tmp_path)
        for entry in _entries(tmp_path):
            data = json.loads(entry.read_text())
            data["format_version"] = -1
            entry.write_text(json.dumps(data))
        out = verify_source(SRC, cache=True, cache_dir=tmp_path)
        assert out.ok and out.metrics.cache_hits == 0

    def test_semantically_broken_entry_is_a_miss(self, tmp_path):
        verify_source(SRC, cache=True, cache_dir=tmp_path)
        for entry in _entries(tmp_path):
            data = json.loads(entry.read_text())
            data["ok"] = False          # failed entry without error record
            data["error"] = None
            entry.write_text(json.dumps(data))
        out = verify_source(SRC, cache=True, cache_dir=tmp_path)
        assert out.ok and out.metrics.cache_hits == 0

    def test_corrupt_entries_are_repaired_on_rewrite(self, tmp_path):
        verify_source(SRC, cache=True, cache_dir=tmp_path)
        for entry in _entries(tmp_path):
            entry.write_text("junk")
        verify_source(SRC, cache=True, cache_dir=tmp_path)   # rewrites
        out = verify_source(SRC, cache=True, cache_dir=tmp_path)
        assert out.metrics.cache_hits == 2

    def test_unreadable_cache_dir_never_crashes(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("a file where the cache dir should be")
        out = verify_source(SRC, cache=True, cache_dir=target)
        assert out.ok   # cache writes fail silently; verification runs
