"""PoolSession: a warm, reusable process pool for batch verification.

Fuzzing campaigns call ``run_units`` once per round; without a session
every round pays process-pool cold-start.  These tests pin the session
contract: same results as the per-call pool, reuse across batches, and
survival of a ``reset()`` (the campaign's poisoned-pool recovery)."""

from repro.driver import DriverConfig, PoolSession, Unit, run_units
from repro.lang.elaborate import elaborate_source

from .conftest import study_path


def _units(stems):
    units = []
    for stem in stems:
        source = study_path(stem).read_text()
        units.append(Unit(key=stem, source=source,
                          tp=elaborate_source(source)))
    return units


def _outcomes(results):
    return {key: (result.ok,
                  sorted((name, fr.ok)
                         for name, fr in result.functions.items()))
            for key, (result, _metrics) in results.items()}


def test_session_results_equal_per_call_pool():
    units = _units(["mpool", "queue"])
    plain = run_units(units, DriverConfig(jobs=2))
    with PoolSession(2) as session:
        pooled = run_units(units, DriverConfig(jobs=2), session=session)
    assert _outcomes(plain) == _outcomes(pooled)


def test_session_is_reused_across_batches():
    with PoolSession(2) as session:
        a = run_units(_units(["mpool", "queue"]),
                      DriverConfig(jobs=2), session=session)
        b = run_units(_units(["alloc", "queue"]), DriverConfig(jobs=2),
                      session=session)
        assert session.batches >= 2
    assert all(result.ok for result, _ in a.values())
    assert all(result.ok for result, _ in b.values())


def test_session_survives_reset():
    units = _units(["mpool", "alloc"])
    with PoolSession(2) as session:
        before = run_units(units, DriverConfig(jobs=2), session=session)
        session.reset()
        after = run_units(units, DriverConfig(jobs=2), session=session)
        assert session.resets == 1
    assert _outcomes(before) == _outcomes(after)


def test_session_preserves_traced_signatures():
    # the trace determinism contract extends to session workers: pooled
    # traced checks distill to the same signature as serial ones
    from repro.trace.signature import signature_of
    units = _units(["queue"])
    serial = run_units(units, DriverConfig(jobs=1, trace=True))
    with PoolSession(2) as session:
        pooled = run_units(_units(["queue"]),
                           DriverConfig(jobs=2, trace=True),
                           session=session)
    sig = lambda res: signature_of(res["queue"][0].trace)  # noqa: E731
    assert sig(serial) == sig(pooled)
