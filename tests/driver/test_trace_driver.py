"""End-to-end tracing through the driver: parallel == serial event
streams, metrics trace blocks, stuck reports across the process pool,
and a valid Chrome export from a real run."""

import pytest

from repro.frontend import verify_file, verify_source
from repro.trace.chrome import validate_chrome_trace

from .conftest import study_path
from .test_determinism import _seeded_failure_source

STUDY = "mpool"


@pytest.fixture(scope="module")
def serial():
    return verify_file(study_path(STUDY), trace=True, jobs=1)


@pytest.fixture(scope="module")
def parallel():
    return verify_file(study_path(STUDY), trace=True, jobs=4)


class TestDeterminism:
    def test_parallel_stream_equals_serial(self, serial, parallel):
        """The tentpole invariant: modulo the timestamp fields, the
        parallel trace is byte-identical to the serial one."""
        k1 = serial.trace.deterministic_keys()
        k4 = parallel.trace.deterministic_keys()
        assert k1 == k4
        assert len(k1) == serial.trace.event_count() > 0

    def test_repeated_runs_identical(self, serial):
        again = verify_file(study_path(STUDY), trace=True, jobs=1)
        assert again.trace.deterministic_keys() == \
            serial.trace.deterministic_keys()

    def test_buffer_order_is_front_end_then_spec_order(self, serial):
        buffers = serial.trace.buffers
        assert buffers[0].function == ""
        spec_order = [name for name in serial.typed_program.specs]
        traced = [b.function for b in buffers[1:]]
        assert traced == [n for n in spec_order if n in traced]


class TestOutcomeSurface:
    def test_trace_property(self, serial):
        assert serial.trace is not None
        assert serial.trace.unit == STUDY

    def test_untraced_run_has_no_trace(self):
        out = verify_file(study_path(STUDY), trace=False)
        assert out.trace is None
        assert out.metrics.trace is None

    def test_metrics_trace_block(self, serial):
        block = serial.metrics.trace
        assert block is not None
        assert block["events"] == serial.trace.event_count()
        assert block["rules"]                  # per-rule aggregation
        assert block["solver"]["prove_calls"] > 0
        assert "trace:" in serial.metrics.summary()

    def test_counters_unaffected_by_tracing(self, serial):
        plain = verify_file(study_path(STUDY), trace=False)
        for name, fr in plain.result.functions.items():
            assert fr.stats.counters() == \
                serial.result.functions[name].stats.counters()

    def test_chrome_export_of_real_run_is_valid(self, serial):
        data = serial.trace.to_chrome()
        assert validate_chrome_trace(data) == []


class TestStuckReports:
    def test_stuck_report_survives_process_pool(self):
        broken = _seeded_failure_source(STUDY)
        serial = verify_source(broken, study=STUDY, trace=True, jobs=1)
        pooled = verify_source(broken, study=STUDY, trace=True, jobs=4)
        assert not serial.ok and not pooled.ok
        for name, fr in serial.result.functions.items():
            if fr.ok:
                continue
            s1 = fr.error.stuck
            s4 = pooled.result.functions[name].error.stuck
            assert s1 is not None and s4 is not None
            assert s1.render() == s4.render()

    def test_report_includes_stuck_sections(self):
        broken = _seeded_failure_source(STUDY)
        out = verify_source(broken, study=STUDY, trace=True)
        text = out.report()
        assert "--- stuck goal " in text
        assert "stuck side condition:" in text
        assert "context Γ" in text and "context Δ" in text
        assert "trace event(s):" in text

    def test_format_error_unchanged_by_tracing(self):
        """format_error feeds the determinism fingerprints and the result
        cache — the stuck report must only extend report()."""
        broken = _seeded_failure_source(STUDY)
        plain = verify_source(broken, study=STUDY, trace=False)
        traced = verify_source(broken, study=STUDY, trace=True)
        for name, fr in plain.result.functions.items():
            assert fr.format_error() == \
                traced.result.functions[name].format_error()
        untraced_failure = next(fr for fr in plain.result.functions.values()
                                if not fr.ok)
        assert untraced_failure.error.stuck is None
