"""Parser tests for the annotated C subset."""

import pytest

from repro.lang import cst
from repro.lang.parser import ParseError, parse


class TestStructs:
    def test_plain_struct(self):
        unit = parse("struct s { size_t a; int b; };")
        assert len(unit.structs) == 1
        sd = unit.structs[0]
        assert sd.name == "s"
        assert [n for _, n, _ in sd.fields] == ["a", "b"]

    def test_struct_with_attributes(self):
        unit = parse('''
            struct [[rc::refined_by("a: nat")]] mem_t {
              [[rc::field("a @ int<size_t>")]] size_t len;
              [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
            };''')
        sd = unit.structs[0]
        assert sd.attrs.all("refined_by") == ["a: nat"]
        assert sd.field_attrs["len"] == "a @ int<size_t>"
        assert "buffer" in sd.field_attrs

    def test_typedef_pointer_struct(self):
        # The Figure 3 form: typedef struct [[...]] chunk {...}* chunks_t;
        unit = parse('''
            typedef struct chunk {
              size_t size;
              struct chunk* next;
            }* chunks_t;''')
        sd = unit.structs[0]
        assert sd.name == "chunk"
        assert sd.typedef_ptr_alias == "chunks_t"

    def test_typedef_struct_alias(self):
        unit = parse("typedef struct point { int x; } point_t;")
        assert unit.structs[0].typedef_alias == "point_t"

    def test_union(self):
        unit = parse("union u { int a; size_t b; };")
        assert unit.structs[0].is_union

    def test_array_field(self):
        unit = parse("struct h { size_t keys[16]; };")
        ftype = unit.structs[0].fields[0][0]
        assert isinstance(ftype, cst.CArray) and ftype.count == 16

    def test_atomic_field(self):
        unit = parse("struct s { _Atomic int locked; };")
        assert unit.structs[0].fields[0][2] is True

    def test_struct_definition_plus_global(self):
        unit = parse("struct s { int a; } G;")
        assert unit.globals[0].name == "G"


class TestFunctions:
    def test_simple_function(self):
        unit = parse("void f(int x) { return; }")
        fd = unit.functions[0]
        assert fd.name == "f"
        assert fd.params[0][1] == "x"
        assert isinstance(fd.ret, cst.CVoid)

    def test_function_with_spec(self):
        unit = parse('''
            [[rc::parameters("n: nat")]]
            [[rc::args("n @ int<size_t>")]]
            [[rc::returns("n @ int<size_t>")]]
            size_t id(size_t x) { return x; }''')
        fd = unit.functions[0]
        assert fd.attrs.all("parameters") == ["n: nat"]
        assert fd.attrs.first("returns") == "n @ int<size_t>"

    def test_declaration_without_body(self):
        unit = parse("void f(int x);")
        assert unit.functions[0].body is None

    def test_void_parameter_list(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_fnptr_typedef(self):
        unit = parse("typedef int64_t (*cmp_fn)(int64_t, int64_t);\n"
                     "int64_t use(cmp_fn f) { return f(1, 2); }")
        fd = unit.functions[0]
        assert isinstance(fd.params[0][0], cst.CFnPtr)


class TestStatements:
    def _body(self, stmts_src):
        unit = parse("void f(size_t n, size_t* p) { %s }" % stmts_src)
        return unit.functions[0].body

    def test_decl_with_init(self):
        body = self._body("size_t x = n + 1;")
        assert isinstance(body[0], cst.SDecl)
        assert body[0].name == "x"

    def test_compound_assignment(self):
        body = self._body("n -= 4;")
        assert isinstance(body[0], cst.SAssign) and body[0].op == "-="

    def test_increment(self):
        body = self._body("n++;")
        assert body[0].op == "+="

    def test_if_else(self):
        body = self._body("if (n > 0) { n = 1; } else n = 2;")
        s = body[0]
        assert isinstance(s, cst.SIf) and len(s.then) == 1 and len(s.els) == 1

    def test_while_with_annotations(self):
        body = self._body('''
            [[rc::exists("c: nat")]]
            [[rc::inv_vars("n: c @ int<size_t>")]]
            while (n > 0) { n -= 1; }''')
        s = body[0]
        assert isinstance(s, cst.SWhile)
        assert s.annots.exists == ["c: nat"]
        assert s.annots.inv_vars == ["n: c @ int<size_t>"]

    def test_for_desugars(self):
        body = self._body("for (size_t i = 0; i < n; i++) { *p = i; }")
        wrapper = body[0]
        assert isinstance(wrapper, cst.SIf)  # init + while wrapper
        assert any(isinstance(s, cst.SWhile) for s in wrapper.then)

    def test_break_continue(self):
        body = self._body("while (1) { if (n) break; continue; }")
        loop = body[0]
        assert isinstance(loop.body[0], cst.SIf)

    def test_annotation_on_non_loop_rejected(self):
        with pytest.raises(ParseError):
            self._body('[[rc::exists("c: nat")]] n = 1;')


class TestExpressions:
    def _expr(self, src):
        unit = parse("void f(size_t n, size_t* p, struct s* q) { n = %s; }"
                     % src)
        return unit.functions[0].body[0].rhs

    def test_precedence(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, cst.Binary) and e.op == "+"
        assert isinstance(e.r, cst.Binary) and e.r.op == "*"

    def test_member_chain(self):
        e = self._expr("q->a")
        assert isinstance(e, cst.Member) and e.arrow

    def test_index(self):
        e = self._expr("p[3]")
        assert isinstance(e, cst.Index)

    def test_deref_and_addrof(self):
        e = self._expr("*p")
        assert isinstance(e, cst.Unary) and e.op == "*"

    def test_cast(self):
        e = self._expr("(size_t)n")
        assert isinstance(e, cst.CastExpr)

    def test_sizeof(self):
        e = self._expr("sizeof(size_t)")
        assert isinstance(e, cst.SizeofType)

    def test_call(self):
        e = self._expr("g(n, 1)")
        assert isinstance(e, cst.Call) and len(e.args) == 2

    def test_null(self):
        unit = parse("void f(int* p) { p = NULL; }")
        assert isinstance(unit.functions[0].body[0].rhs, cst.NullLit)

    def test_parenthesised_is_not_cast(self):
        e = self._expr("(n) + 1")
        assert isinstance(e, cst.Binary)
