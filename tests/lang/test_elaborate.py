"""Elaboration tests: C AST → Caesium CFG + specs, and execution of the
elaborated programs on the interpreter (front end + semantics together)."""

import pytest

from repro.caesium.eval import Machine
from repro.caesium.layout import SIZE_T
from repro.caesium.values import (UndefinedBehavior, VInt, VPtr, decode_int,
                                  encode_int)
from repro.lang import ElaborationError, elaborate_source


def machine_for(src):
    tp = elaborate_source(src)
    return Machine(tp.program), tp


class TestLayouts:
    def test_struct_layout_registered(self):
        _, tp = machine_for("struct mem_t { size_t len; "
                            "unsigned char* buffer; };")
        layout = tp.program.structs["mem_t"]
        assert layout.size == 16
        assert layout.offset_of("buffer") == 8

    def test_sizeof_constant_available(self):
        _, tp = machine_for("struct chunk { size_t size; "
                            "struct chunk* next; };")
        assert "sizeof(struct chunk)" in tp.ctx.constants


class TestExecution:
    def test_arithmetic_function(self):
        m, _ = machine_for("size_t f(size_t a, size_t b) "
                           "{ return a * 2 + b; }")
        assert m.call("f", [VInt(5, SIZE_T), VInt(3, SIZE_T)]).value == 13

    def test_while_loop(self):
        m, _ = machine_for('''
            size_t sum_to(size_t n) {
              size_t s = 0;
              while (n > 0) { s += n; n -= 1; }
              return s;
            }''')
        assert m.call("sum_to", [VInt(10, SIZE_T)]).value == 55

    def test_for_loop(self):
        m, _ = machine_for('''
            size_t squares(size_t n) {
              size_t s = 0;
              for (size_t i = 0; i < n; i++) { s += i * i; }
              return s;
            }''')
        assert m.call("squares", [VInt(4, SIZE_T)]).value == 14

    def test_short_circuit_and(self):
        # p may be NULL: && must not dereference it.
        m, _ = machine_for('''
            int safe(size_t* p) {
              if (p != NULL && *p > 0) return 1;
              return 0;
            }''')
        from repro.caesium.values import NULL
        assert m.call("safe", [VPtr(NULL)]).value == 0

    def test_short_circuit_or(self):
        m, _ = machine_for('''
            int f(size_t a, size_t b) {
              if (a > 0 || b > 0) return 1;
              return 0;
            }''')
        assert m.call("f", [VInt(0, SIZE_T), VInt(7, SIZE_T)]).value == 1

    def test_struct_member_access(self):
        m, tp = machine_for('''
            struct pair { size_t a; size_t b; };
            size_t sum(struct pair* p) { return p->a + p->b; }''')
        mem = m.memory
        p = mem.allocate(16)
        mem.store(p, encode_int(4, SIZE_T))
        mem.store(p + 8, encode_int(38, SIZE_T))
        assert m.call("sum", [VPtr(p)]).value == 42

    def test_array_indexing(self):
        m, _ = machine_for(
            "size_t get(size_t* a, size_t i) { return a[i]; }")
        mem = m.memory
        arr = mem.allocate(24)
        for i, v in enumerate([10, 20, 30]):
            mem.store(arr + 8 * i, encode_int(v, SIZE_T))
        assert m.call("get", [VPtr(arr), VInt(2, SIZE_T)]).value == 30

    def test_pointer_arithmetic_scaled(self):
        m, _ = machine_for(
            "size_t get(size_t* a) { return *(a + 1); }")
        mem = m.memory
        arr = mem.allocate(16)
        mem.store(arr + 8, encode_int(99, SIZE_T))
        assert m.call("get", [VPtr(arr)]).value == 99

    def test_call_between_functions(self):
        m, _ = machine_for('''
            size_t twice(size_t x) { return x * 2; }
            size_t f(size_t x) { return twice(x) + 1; }''')
        assert m.call("f", [VInt(20, SIZE_T)]).value == 41

    def test_function_pointer_call(self):
        m, _ = machine_for('''
            typedef int64_t (*op_fn)(int64_t, int64_t);
            int64_t add_op(int64_t a, int64_t b) { return a + b; }
            int64_t apply(op_fn f, int64_t x) { return f(x, 10); }
            int64_t main_test(int64_t x) { return apply(add_op, x); }''')
        from repro.caesium.layout import I64
        assert m.call("main_test", [VInt(5, I64)]).value == 15

    def test_writes_through_pointer(self):
        m, _ = machine_for("void set(size_t* p, size_t v) { *p = v; }")
        mem = m.memory
        cell = mem.allocate(8)
        m.call("set", [VPtr(cell), VInt(123, SIZE_T)])
        assert decode_int(mem.load(cell, 8), SIZE_T).value == 123

    def test_break_and_continue(self):
        m, _ = machine_for('''
            size_t f(size_t n) {
              size_t c = 0;
              size_t i = 0;
              while (i < n) {
                i += 1;
                if (i == 3) continue;
                if (i == 7) break;
                c += 1;
              }
              return c;
            }''')
        # counts 1,2,4,5,6 -> 5
        assert m.call("f", [VInt(100, SIZE_T)]).value == 5

    def test_uninitialised_read_is_ub_at_runtime(self):
        m, _ = machine_for('''
            size_t f(void) {
              size_t x;
              return x;
            }''')
        with pytest.raises(UndefinedBehavior):
            m.call("f", [])


class TestErrors:
    def test_unknown_variable(self):
        with pytest.raises(ElaborationError):
            elaborate_source("void f(void) { x = 1; }")

    def test_duplicate_local(self):
        with pytest.raises(ElaborationError):
            elaborate_source(
                "void f(void) { int x = 1; { int x = 2; } }")

    def test_missing_return_nonvoid(self):
        with pytest.raises(ElaborationError):
            elaborate_source("size_t f(void) { size_t x = 1; }")

    def test_break_outside_loop(self):
        with pytest.raises(ElaborationError):
            elaborate_source("void f(void) { break; }")

    def test_impl_line_count_skips_annotations(self):
        tp = elaborate_source('''
            // comment only
            [[rc::parameters("n: nat")]]
            [[rc::args("n @ int<size_t>")]]
            size_t f(size_t x) {
              return x;
            }''')
        assert tp.source_lines["total"] == 3  # signature+{, return, }
