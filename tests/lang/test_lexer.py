"""Lexer tests: C tokens and [[rc::...]] attribute blocks."""

import pytest

from repro.lang.lexer import LexError, Token, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


class TestBasicTokens:
    def test_identifiers_and_punct(self):
        toks = kinds("size_t x = a + b;")
        assert ("ident", "size_t") in toks
        assert ("punct", "+") in toks
        assert ("punct", ";") in toks

    def test_numbers(self):
        toks = tokenize("42 0x1F 7u 100UL")
        assert [t.text for t in toks[:-1]] == ["42", "0x1F", "7u", "100UL"]

    def test_multichar_puncts(self):
        toks = kinds("a->b <= c == d != e && f")
        texts = [t for _, t in toks]
        assert "->" in texts and "<=" in texts and "==" in texts
        assert "!=" in texts and "&&" in texts

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        lines = {t.text: t.line for t in toks if t.kind == "ident"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_preprocessor_lines_skipped(self):
        assert kinds("#include <stddef.h>\nx") == [("ident", "x")]

    def test_unknown_char(self):
        with pytest.raises(LexError):
            tokenize("a ` b")


class TestAttributes:
    def test_simple_attribute(self):
        toks = tokenize('[[rc::parameters("a: nat")]] void f();')
        attr = toks[0]
        assert attr.kind == "attr"
        assert attr.attr_name == "parameters"
        assert attr.attr_args == ("a: nat",)

    def test_multiple_args(self):
        toks = tokenize('[[rc::parameters("a: nat", "n: nat", "p: loc")]]')
        assert toks[0].attr_args == ("a: nat", "n: nat", "p: loc")

    def test_no_args(self):
        toks = tokenize("[[rc::trusted]]")
        assert toks[0].attr_name == "trusted"
        assert toks[0].attr_args == ()

    def test_string_concatenation(self):
        # Figure 3 splits long annotations across string literals.
        toks = tokenize('[[rc::ptr_type("chunks_t:"\n'
                        '              "{s != 0} @ optional<x, null>")]]')
        assert toks[0].attr_args == \
            ("chunks_t:{s != 0} @ optional<x, null>",)

    def test_concatenation_and_commas(self):
        toks = tokenize('[[rc::constraints("a" "b", "c")]]')
        assert toks[0].attr_args == ("ab", "c")

    def test_unicode_payload(self):
        toks = tokenize('[[rc::constraints("{s = {[n]} ⊎ tail}")]]')
        assert toks[0].attr_args == ("{s = {[n]} ⊎ tail}",)

    def test_unterminated_attribute(self):
        with pytest.raises(LexError):
            tokenize("[[rc::field(")

    def test_non_rc_attribute_rejected(self):
        with pytest.raises(LexError):
            tokenize("[[nodiscard]]")
